"""Campaign execution: resumable parallel sweeps over a job grid.

:class:`CampaignRunner` is the scheduling layer between a
:class:`~repro.campaign.spec.CampaignSpec` and an executor: it expands the
grid, subtracts jobs the :class:`~repro.campaign.store.ResultStore` already
holds (resume), and runs the remainder in batches on one of four backends —
``serial`` / ``thread`` / ``process`` via
:func:`~repro.parallel.backends.parallel_map`, or ``mw``, which dispatches
each job as an :class:`~repro.mw.task.MWTask` through
:class:`~repro.mw.MWDriver` (crashed workers requeue their tasks; affinity
optionally pins jobs to worker ranks).

Batching bounds the blast radius of a crash or Ctrl-C — everything up to
the last completed batch is durably recorded, and ``KeyboardInterrupt``
returns a report instead of unwinding, so the obvious follow-up is simply
to re-run the same command.  Several runner processes — or hosts sharing
a filesystem — can *cooperatively drain one campaign*; with leases
enabled (the default) each batch is **claimed** in the store before it is
dispatched, so exactly one runner executes each job: the claim is granted
under the store's lock, renewed by a heartbeat thread while the batch is
in flight, released on graceful interrupt, and simply allowed to expire
when a runner is hard-killed — at which point any peer reclaims the jobs.
With ``lease=False`` the runner falls back to the older stagger + shed
heuristic (periodic store re-reads shed peer completions; overlap is
harmless because job results are deterministic in the job, merely
wasteful).

:class:`Campaign` is the directory-level façade the CLI and examples use:
``<dir>/spec.json`` plus a result store — any
:class:`~repro.campaign.backends.base.StoreBackend` engine: the legacy
single ``results.jsonl``, the sharded ``results-<k>.jsonl`` layout (see
:mod:`repro.campaign.sharding`), or the transactional SQLite store
(``store="sqlite"``).
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Set

from repro.campaign.aggregate import CellSummary, PairedComparison, compare_labels, summarize
from repro.campaign.execution import RUN_ID_ENV, run_job
from repro.campaign.backends import parse_store_spec
from repro.campaign.progress import ProgressSnapshot
from repro.campaign.sharding import open_store
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_FAILED,
    CompactionStats,
    ResultStore,
)
from repro.mw.transport import TRANSPORT_NAMES, is_tcp_spec
from repro.parallel.backends import parallel_map
from repro.telemetry import Telemetry

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"

#: Execution backends a runner accepts.
RUNNER_BACKENDS = ("serial", "thread", "process", "mw")
#: Same-host transports the ``mw`` backend can put under the driver
#: (a ``tcp://host:port`` listen URL is also accepted — see
#: :mod:`repro.mw.tcp` and ``docs/CAMPAIGNS.md`` on cross-host campaigns).
#: Owned by :mod:`repro.mw.transport`; re-exported here for campaign users.
MW_TRANSPORTS = TRANSPORT_NAMES

#: Default seconds a claim lease lives without renewal.  Generous on
#: purpose: expiry only has to beat *abandonment* (a killed runner), not
#: latency, and it must absorb cross-host clock skew and GC/IO pauses.
DEFAULT_LEASE_TTL = 60.0

ProgressCallback = Callable[[ProgressSnapshot], None]

_log = logging.getLogger(__name__)


def default_runner_id() -> str:
    """This process's runner identity for lease lines (``host:pid``).

    Unique among live runners sharing a store (one filesystem namespace
    per host, one pid per process); stable for the lifetime of the
    process, which is exactly a lease's scope.
    """
    return f"{socket.gethostname()}:{os.getpid()}"


def validate_mw_transport(spec: str) -> None:
    """Raise ``ValueError`` unless ``spec`` names a usable mw transport.

    Shared by :class:`CampaignRunner` and the CLI (which validates before
    launching a run, so a typo'd ``--transport`` fails immediately instead
    of surfacing as a mid-run error).  The set of valid specs is owned by
    :mod:`repro.mw.transport`; this only rephrases its answer in campaign
    terms.
    """
    if spec not in TRANSPORT_NAMES and not is_tcp_spec(spec):
        raise ValueError(
            f"mw_transport must be one of {TRANSPORT_NAMES} or a "
            f"tcp://host:port URL, got {spec!r}"
        )


@dataclass
class CampaignReport:
    """What one ``run()`` call did."""

    n_total: int          # jobs in the expanded grid
    n_skipped: int        # already completed in the store (resume)
    n_run: int            # executed this call
    n_done: int           # of those, succeeded
    n_failed: int         # of those, failed
    n_shed: int = 0       # completed by a cooperating runner mid-flight
    n_leased: int = 0     # left to a peer holding a live claim lease
    interrupted: bool = False

    @property
    def n_remaining(self) -> int:
        """Jobs still not completed anywhere after this call."""
        return self.n_total - self.n_skipped - self.n_done - self.n_shed

    def __str__(self) -> str:
        shed = f", {self.n_shed} shed to peers" if self.n_shed else ""
        leased = f", {self.n_leased} leased to peers" if self.n_leased else ""
        tail = "  [interrupted]" if self.interrupted else ""
        return (
            f"{self.n_total} jobs: {self.n_skipped} already done, "
            f"{self.n_done} completed, {self.n_failed} failed{shed}{leased}, "
            f"{self.n_remaining} remaining{tail}"
        )


class _LeaseHeartbeat:
    """Background renewal of one batch's leases while it is in flight.

    The runner blocks inside ``parallel_map`` / ``driver.wait_all`` for
    the whole batch, so renewal has to come from a daemon thread.  Every
    ``ttl / 3`` seconds it re-asserts the leases this runner *still
    holds* (:meth:`ResultStore.renew` checks ownership under the store
    lock, so a lease a peer legitimately reclaimed after a stall is not
    clobbered) and it is joined before the batch's results are recorded,
    so the store is never touched from two threads at once.  The sleep
    between beats *deducts the renew round trip* — against a slow or
    remote store a fixed ``ttl/3`` sleep on top of renew latency would
    stretch the true beat period toward the ttl and let leases lapse
    mid-batch.  A renewal that fails is retried once immediately; a beat
    that fails both attempts is skipped, not fatal — the next beat
    retries, and in the worst case the lease expires and a peer
    duplicates the batch (wasteful, never wrong) — but it is *surfaced*,
    through the ``repro_lease_renew_failures_total`` counter and a
    warning log, so a store that is quietly unreachable does not look
    healthy.
    """

    def __init__(self, store, job_ids: Sequence[str], runner: str, ttl: float,
                 telemetry=None) -> None:
        self._store = store
        self._job_ids = list(job_ids)
        self._runner = runner
        self._ttl = float(ttl)
        if telemetry is None:
            telemetry = Telemetry.from_env()
        self._failures = telemetry.counter(
            "repro_lease_renew_failures_total",
            "Lease heartbeat renewals that failed even after one retry.",
        )
        self.n_failures = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="lease-heartbeat", daemon=True
        )
        self._thread.start()

    def _renew_once(self) -> None:
        self._store.renew(self._job_ids, self._runner, self._ttl)

    def _loop(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        delay = interval
        while not self._stop.wait(delay):
            started = time.monotonic()
            try:
                self._renew_once()
            except OSError:
                try:
                    self._renew_once()  # retry once: most store errors are blips
                except OSError as exc:
                    self.n_failures += 1
                    self._failures.inc()
                    _log.warning(
                        "lease renewal for %d job(s) failed twice "
                        "(%d failed beats so far; lease ttl %.0fs): %s",
                        len(self._job_ids), self.n_failures, self._ttl, exc,
                    )
            # Deduct the time renewing took so beats stay ~ttl/3 apart
            # wall-clock; floor keeps a pathologically slow store from
            # turning the loop into a busy spin.
            delay = max(interval - (time.monotonic() - started), 0.05)

    def stop(self) -> None:
        """Stop renewing and wait for the thread (store is ours again)."""
        self._stop.set()
        self._thread.join()


class CampaignRunner:
    """Executes the pending jobs of a spec against a result store.

    Parameters
    ----------
    spec:
        The declarative grid to drain.
    store:
        Result store shared by every cooperating runner (resume skip-set,
        claim-lease arbiter, and the append target) — any
        :class:`~repro.campaign.backends.base.StoreBackend`
        implementation: the JSONL
        :class:`~repro.campaign.store.ResultStore` (single file or
        in-memory), the sharded layout, or the SQLite engine.
    backend:
        ``serial`` / ``thread`` / ``process`` (via ``parallel_map``) or
        ``mw`` (via :class:`~repro.mw.MWDriver`).
    max_workers:
        Worker count for the parallel backends (``mw``: driver workers).
    chunksize:
        Jobs per IPC message on the ``process`` backend.
    batch_size:
        Jobs between store writes — the resume granularity, and with
        leases also the claim granularity.  Defaults to 1 for ``serial``
        and ``workers * chunksize`` otherwise.
    mw_transport:
        What the mw workers run on: ``inproc`` (deterministic, tests),
        ``threaded``, ``process`` (real parallelism; the default), or a
        ``tcp://host:port`` listen URL — the master waits there for
        standalone ``python -m repro mw-worker`` processes, which may sit
        on other hosts with no shared filesystem.
    mw_affinity:
        Pin batch jobs round-robin to worker ranks (the paper restarts a
        worker "on the same processors"; affinity keeps a job's retries
        on its preferred rank when it is idle).
    mw_max_retries:
        Requeues per task after worker errors or crashes before the job
        is recorded as failed.
    async_mode:
        mw backend only: drive every claimed job through its ask/tell
        seam concurrently instead of running whole jobs on single
        workers.  Each proposal is its own mw task, so a straggler
        worker delays one evaluation, not an iteration barrier — see
        :mod:`repro.core.async_driver` and docs/CAMPAIGNS.md.  Results
        are recorded per job the moment it terminates.  Note async
        results are *not* bitwise identical to barriered runs of the
        same job: scheduling depth adds speculative refinements.
    max_inflight:
        Async mode: cap on simultaneously outstanding evaluations
        across all jobs (default ``2 * workers``, raised to
        ``2 * eval_batch`` under batching — enough to keep every worker
        busy while replies are in transit, and to let batch frames
        fill).
    eval_batch:
        Async mode: proposals per mw frame (``--eval-batch q``).  At the
        default 1 every proposal is its own task; at ``q > 1`` proposals
        sharing an objective (``function:dim``) ride one frame and the
        worker evaluates them in a single vectorized ``batch()`` call —
        amortizing codec/transport/scheduling overhead that dominates
        for cheap objectives.  See docs/CAMPAIGNS.md.
    flush_interval:
        Async mode: upper bound (seconds) on how long a finished job's
        record may sit in the coalescing buffer before a
        ``record_many`` flush.  Records flush immediately once
        ``batch_size`` accumulate; the interval bounds the tail.  The
        sync paths already flush one ``record_many`` per batch, so the
        knob only exists for async mode.
    refresh_pending:
        Legacy-mode only (``lease=False``): re-read the store before each
        batch (after the first) and shed jobs a cooperating runner has
        completed.  With leases the claim itself performs this check
        under the store lock.
    stagger:
        Legacy-mode fallback: rotate this runner's pending list by a
        PID-derived offset so concurrent runners traverse disjoint
        regions of the grid.  With leases this is unnecessary (claims
        partition the grid exactly) but harmless.
    lease:
        Claim each batch in the store before dispatching it (the
        default).  Guarantees exactly one runner executes each job —
        concurrent runners partition the grid via granted claims, a
        killed runner's claims expire after ``lease_ttl`` seconds and are
        then requeued, and a run keeps making passes until everything is
        done, failed, or validly leased to a live peer.  ``False``
        restores the PR-2 stagger + shed behaviour (duplicate in-flight
        work possible, results unaffected).
    lease_ttl:
        Seconds a claim survives without renewal.  The heartbeat renews
        at ``ttl / 3``, so only a hard-killed runner lets one lapse; keep
        it generous (default 60) — it bounds how long a crashed runner's
        jobs stay unavailable, not how fast healthy runs go.
    runner_id:
        Lease identity of this runner; defaults to
        :func:`default_runner_id` (``host:pid``).
    telemetry:
        The :class:`~repro.telemetry.Telemetry` context this run reports
        through; defaults to :meth:`Telemetry.from_env` (live only when
        ``$REPRO_TELEMETRY`` is set — the no-op otherwise).  When live,
        the runner also routes the store's latency metrics through it,
        exports the run id via ``$REPRO_RUN_ID`` so execution audit
        lines correlate with trace events, and traces the claim /
        evaluate / record lifecycle of every batch.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
        mw_transport: str = "process",
        mw_affinity: bool = False,
        mw_max_retries: int = 2,
        async_mode: bool = False,
        max_inflight: Optional[int] = None,
        eval_batch: int = 1,
        flush_interval: float = 2.0,
        refresh_pending: bool = True,
        stagger: bool = False,
        lease: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        runner_id: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if backend not in RUNNER_BACKENDS:
            raise ValueError(
                f"backend must be one of {RUNNER_BACKENDS}, got {backend!r}"
            )
        validate_mw_transport(mw_transport)
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if async_mode and backend != "mw":
            raise ValueError(
                f"async mode drives evaluations through the mw layer; "
                f"backend must be 'mw', got {backend!r}"
            )
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if int(eval_batch) < 1:
            raise ValueError(f"eval_batch must be >= 1, got {eval_batch}")
        if int(eval_batch) > 1 and not async_mode:
            raise ValueError("eval_batch > 1 requires async mode (--async)")
        if flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be positive, got {flush_interval}"
            )
        self.spec = spec
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.mw_transport = mw_transport
        self.mw_affinity = bool(mw_affinity)
        self.mw_max_retries = int(mw_max_retries)
        self.async_mode = bool(async_mode)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.eval_batch = int(eval_batch)
        self.flush_interval = float(flush_interval)
        self.refresh_pending = bool(refresh_pending)
        self.stagger = bool(stagger)
        self.lease = bool(lease)
        self.lease_ttl = float(lease_ttl)
        self.runner_id = runner_id or default_runner_id()
        self.telemetry = telemetry if telemetry is not None else Telemetry.from_env()
        if self.telemetry.enabled:
            # One registry for the whole run: store latency histograms land
            # next to runner spans, so `campaign metrics` sees both.
            self.store.telemetry = self.telemetry
        if batch_size is None:
            if backend == "serial":
                batch_size = 1  # record after every job: finest resume grain
            else:
                workers = max_workers or os.cpu_count() or 2
                batch_size = max(1, workers * chunksize)
        self.batch_size = int(batch_size)

    def pending(self) -> List[Job]:
        """Grid jobs not yet completed in the store, in expansion order."""
        done = self.store.completed_ids()
        return [job for job in self.spec.expand() if job.job_id not in done]

    def run(
        self,
        max_jobs: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute pending jobs; returns instead of raising on Ctrl-C.

        ``max_jobs`` caps how many jobs this call executes (useful for
        smoke tests and for simulating an interrupted campaign).
        ``progress`` is called with a
        :class:`~repro.campaign.progress.ProgressSnapshot` after every
        recorded batch — the ``--progress`` heartbeat.

        With leases enabled the call makes repeated passes over the
        grid: each pass claims and executes what it can, and jobs whose
        leases expired between passes (an abandoned peer) are requeued.
        The call returns when everything is settled or the only jobs
        left are validly leased to live peers (``n_leased`` in the
        report; re-run later, or let the peer finish).
        """
        jobs = self.spec.expand()
        n_total = len(jobs)
        done = self.store.completed_ids()
        n_skipped = n_total - sum(1 for j in jobs if j.job_id not in done)
        counts = {"done": 0, "failed": 0, "shed": 0, "leased": 0}
        executed: Set[str] = set()
        budget = None if max_jobs is None else max(0, int(max_jobs))
        t0 = time.monotonic()

        def emit() -> None:
            if progress is None:
                return
            elapsed = max(time.monotonic() - t0, 1e-9)
            progress(
                ProgressSnapshot(
                    campaign=self.spec.name,
                    n_total=n_total,
                    done=n_skipped + counts["done"] + counts["shed"],
                    failed=counts["failed"],
                    elapsed_s=elapsed,
                    rate=counts["done"] / elapsed,
                )
            )

        saved_run_env = os.environ.get(RUN_ID_ENV)
        if self.telemetry.enabled:
            # Executing processes (pool workers fork after this point) stamp
            # this run's id into their audit lines and store records.
            os.environ[RUN_ID_ENV] = self.telemetry.run_id
            self.telemetry.event(
                "run_start",
                campaign=self.spec.name,
                backend=self.backend,
                n_total=n_total,
                n_skipped=n_skipped,
            )
        interrupted = False
        try:
            while True:
                self.telemetry.counter(
                    "repro_runner_passes_total",
                    "Claim-and-execute passes over the grid.",
                ).inc()
                pending = self._pending_pass(jobs, executed)
                if budget is not None:
                    pending = pending[:budget]
                if self.stagger and len(pending) > 1:
                    # Disjoint, batch-aligned starting regions per runner;
                    # completions meet in the middle via the periodic store
                    # re-read.  Offsetting by whole batches keeps the offset
                    # pid-sensitive even when batch_size divides len(pending).
                    n_batches = -(-len(pending) // self.batch_size)
                    offset = (os.getpid() % n_batches) * self.batch_size
                    pending = pending[offset:] + pending[:offset]
                if not pending:
                    break
                counts["leased"] = 0  # re-observed every pass, not accumulated
                n_before = counts["done"] + counts["failed"]
                if self.backend == "mw" and self.async_mode:
                    self._run_async(pending, counts, emit, executed)
                elif self.backend == "mw":
                    self._run_mw(pending, counts, emit, executed)
                else:
                    self._run_batches(pending, counts, emit, executed)
                n_executed = counts["done"] + counts["failed"] - n_before
                if budget is not None:
                    budget -= n_executed
                if not self.lease or n_executed == 0:
                    # Legacy mode is single-pass; with leases, a pass that
                    # claimed nothing means everything left is held by live
                    # peers — looping again would spin, not help.
                    break
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if self.telemetry.enabled:
                if saved_run_env is None:
                    os.environ.pop(RUN_ID_ENV, None)
                else:
                    os.environ[RUN_ID_ENV] = saved_run_env
                self.telemetry.event(
                    "run_end",
                    done=counts["done"],
                    failed=counts["failed"],
                    shed=counts["shed"],
                    leased=counts["leased"],
                    elapsed_s=time.monotonic() - t0,
                    interrupted=interrupted,
                )
                self.telemetry.write_metrics()
        return CampaignReport(
            n_total=n_total,
            n_skipped=n_skipped,
            n_run=counts["done"] + counts["failed"],
            n_done=counts["done"],
            n_failed=counts["failed"],
            n_shed=counts["shed"],
            n_leased=counts["leased"],
            interrupted=interrupted,
        )

    # -- backend paths -----------------------------------------------------

    def _pending_pass(self, jobs: List[Job], executed: Set[str]) -> List[Job]:
        """Jobs still worth attempting this pass, in expansion order.

        Excludes store-completed jobs and anything this call already
        executed — a job that *failed* under this runner is not retried
        within the same call (that is the next ``run``'s business), and
        a claim this runner already used up is not re-claimed.
        """
        done = self.store.completed_ids()
        return [
            job for job in jobs
            if job.job_id not in done and job.job_id not in executed
        ]

    def _fresh_batch(self, batch: List[Job], counts: dict) -> List[Job]:
        """Legacy shed: drop jobs a peer completed since our expansion."""
        if not self.refresh_pending:
            return batch
        done = self.store.completed_ids()
        fresh = [job for job in batch if job.job_id not in done]
        counts["shed"] += len(batch) - len(fresh)
        return fresh

    def _claim_batch(self, batch: List[Job], counts: dict) -> List[Job]:
        """Claim a batch in the store; return only the granted jobs.

        Non-granted jobs are either already completed (``shed`` — the
        claim saw their result under the lock) or validly leased to a
        peer (``leased``); both are dropped from this batch.
        """
        ids = [job.job_id for job in batch]
        with self.telemetry.span("claim", n_jobs=len(ids)):
            granted = set(self.store.claim(ids, self.runner_id, self.lease_ttl))
        if len(granted) != len(ids):
            done = self.store.completed_ids()
            for job in batch:
                if job.job_id in granted:
                    continue
                if job.job_id in done:
                    counts["shed"] += 1
                    self.telemetry.counter(
                        "repro_runner_jobs_shed_total",
                        "Jobs dropped because a peer completed them first.",
                    ).inc()
                else:
                    counts["leased"] += 1
                    self.telemetry.counter(
                        "repro_runner_jobs_leased_total",
                        "Jobs skipped because a peer holds a live lease.",
                    ).inc()
        return [job for job in batch if job.job_id in granted]

    def _release_quietly(self, job_ids: Sequence[str]) -> None:
        """Best-effort release of claims we will not fulfil (interrupt path)."""
        try:
            self.store.release(job_ids, self.runner_id)
        except OSError:  # pragma: no cover - store gone mid-teardown
            pass

    def _record_batch(self, records: List[dict], counts: dict) -> None:
        """Append one batch of records, updating the done/failed counters.

        One ``record_many`` call, so the engine batches the whole append
        into a single critical section (one locked write / transaction).
        """
        with self.telemetry.span("record", n_jobs=len(records)):
            self.store.record_many(records)
        for rec in records:
            if rec["status"] == STATUS_DONE:
                counts["done"] += 1
            else:
                counts["failed"] += 1
            self.telemetry.counter(
                "repro_runner_jobs_total",
                "Jobs this runner executed, by outcome.",
                status=rec["status"],
            ).inc()
            self.telemetry.histogram(
                "repro_job_seconds", "Wall-clock duration of job executions.",
            ).observe(float(rec.get("elapsed_s", 0.0)))
            self.telemetry.event(
                "job",
                job_id=rec["job_id"],
                span_id=rec.get("span_id", "-"),
                status=rec["status"],
                elapsed_s=float(rec.get("elapsed_s", 0.0)),
            )

    def _run_batches(self, pending: List[Job], counts: dict, emit, executed: Set[str]) -> None:
        """serial / thread / process path: ``parallel_map`` per batch."""
        for start in range(0, len(pending), self.batch_size):
            batch = pending[start : start + self.batch_size]
            if self.lease:
                batch = self._claim_batch(batch, counts)
            elif start:
                batch = self._fresh_batch(batch, counts)
            if not batch:
                emit()
                continue
            ids = [job.job_id for job in batch]
            heartbeat = (
                _LeaseHeartbeat(self.store, ids, self.runner_id, self.lease_ttl,
                                telemetry=self.telemetry)
                if self.lease else None
            )
            try:
                with self.telemetry.span(
                    "evaluate", n_jobs=len(batch), backend=self.backend
                ):
                    records = parallel_map(
                        run_job,
                        batch,
                        backend=self.backend,
                        max_workers=self.max_workers,
                        chunksize=self.chunksize,
                    )
            except BaseException:
                if heartbeat is not None:
                    heartbeat.stop()
                    heartbeat = None
                if self.lease:
                    self._release_quietly(ids)
                raise
            finally:
                if heartbeat is not None:
                    heartbeat.stop()
            self._record_batch(records, counts)
            executed.update(ids)
            emit()

    def _run_mw(self, pending: List[Job], counts: dict, emit, executed: Set[str]) -> None:
        """mw path: one long-lived driver, one :class:`MWTask` per job.

        Worker crashes on the ``process`` transport requeue the in-flight
        task (up to ``mw_max_retries``); a task the driver gives up on is
        recorded as failed, so the next ``run`` retries the job like any
        other failure.
        """
        if not pending:
            return
        from repro.campaign.execution import mw_job_executor
        from repro.campaign.spec import _is_plain_json
        from repro.mw.driver import MWDriver

        for job in pending:
            if not _is_plain_json(job.options):
                # The other backends pickle the Job intact; mw ships it as a
                # codec dict, which would silently stringify rich options.
                raise ValueError(
                    f"job {job.label!r} has non-JSON options {job.options!r}; "
                    f"the mw backend serializes jobs as plain JSON — use the "
                    f"serial/thread/process backend, or express the options "
                    f"as plain JSON"
                )

        n_workers = self.max_workers or os.cpu_count() or 2
        n_workers = max(1, min(n_workers, len(pending)))
        driver = MWDriver(
            mw_job_executor,
            n_workers=n_workers,
            backend=self.mw_transport,
            max_retries=self.mw_max_retries,
            seed=0,
            telemetry=self.telemetry,
        )
        with driver:
            for start in range(0, len(pending), self.batch_size):
                batch = pending[start : start + self.batch_size]
                if self.lease:
                    batch = self._claim_batch(batch, counts)
                elif start:
                    batch = self._fresh_batch(batch, counts)
                if not batch:
                    emit()
                    continue
                ids = [job.job_id for job in batch]
                heartbeat = (
                    _LeaseHeartbeat(self.store, ids, self.runner_id, self.lease_ttl,
                                telemetry=self.telemetry)
                    if self.lease else None
                )
                try:
                    with self.telemetry.span(
                        "evaluate", n_jobs=len(batch), backend="mw"
                    ):
                        tasks = [
                            driver.submit(
                                job.to_dict(),
                                affinity=(i % n_workers) + 1
                                if self.mw_affinity else None,
                            )
                            for i, job in enumerate(batch)
                        ]
                        driver.wait_all()
                except BaseException:
                    if heartbeat is not None:
                        heartbeat.stop()
                        heartbeat = None
                    if self.lease:
                        self._release_quietly(ids)
                    raise
                finally:
                    if heartbeat is not None:
                        heartbeat.stop()
                records = [
                    task.result if task.done else self._mw_failure_record(job, task)
                    for job, task in zip(batch, tasks)
                ]
                self._record_batch(records, counts)
                executed.update(ids)
                emit()
            if self.telemetry.enabled:
                # Folded per-rank utilization for the paper-style worker
                # table (`campaign watch --cells` and OBSERVABILITY.md).
                self.telemetry.event("workers", workers=driver.utilization())

    def _run_async(self, pending: List[Job], counts: dict, emit, executed: Set[str]) -> None:
        """mw async path: all claimed jobs share the worker pool, no barriers.

        Every job is opened through its ask/tell seam and each proposal is
        submitted as its own mw task (:func:`~repro.campaign.execution.
        mw_eval_executor`) — or, under ``eval_batch > 1``, rides a batched
        frame with other proposals of the same objective
        (:func:`~repro.campaign.execution.batch_proposal_work`);
        :class:`~repro.core.async_driver.AsyncEvalDriver` keeps up to
        ``max_inflight`` evaluations outstanding across all jobs and tells
        replies back as they arrive, in any order.  Finished jobs coalesce
        into a record buffer flushed as one ``record_many`` when
        ``batch_size`` records accumulate or ``flush_interval`` seconds
        pass — so resume granularity in async mode is a *flush*, bounded
        in time, regardless of ``batch_size``.  Evaluations lost to dead
        or erroring workers are requeued by the mw layer exactly as in the
        barriered path; a task failed beyond ``mw_max_retries`` fails only
        its own job (every job aboard, for a batched frame).
        """
        if not pending:
            return
        from repro.campaign.execution import (
            batch_proposal_work,
            build_job_optimizer,
            mw_eval_executor,
            proposal_work,
        )
        from repro.campaign.spec import _is_plain_json
        from repro.core.async_driver import AsyncEvalDriver, EvalSource
        from repro.mw.driver import MWDriver
        from repro.telemetry import new_span_id

        for job in pending:
            if not _is_plain_json(job.options):
                raise ValueError(
                    f"job {job.label!r} has non-JSON options {job.options!r}; "
                    f"the mw backend serializes work as plain JSON"
                )

        n_workers = self.max_workers or os.cpu_count() or 2
        n_workers = max(1, n_workers)
        max_inflight = self.max_inflight or max(2 * n_workers, 2 * self.eval_batch)
        driver = MWDriver(
            mw_eval_executor,
            n_workers=n_workers,
            backend=self.mw_transport,
            max_retries=self.mw_max_retries,
            seed=0,
            telemetry=self.telemetry,
        )

        # The batch-frame builder and flush check outlive any single batch
        # of jobs (the AsyncEvalDriver is constructed once), so both
        # resolve through per-batch state rebound below.
        job_lookup: dict = {}
        flush_check: List[Optional[Callable[[], None]]] = [None]

        def make_batch_work(items):
            return batch_proposal_work(
                [(job_lookup[src.key], proposal) for src, proposal in items]
            )

        def workers_event() -> None:
            if self.telemetry.enabled:
                self.telemetry.event("workers", workers=driver.utilization())

        def heartbeat_fn() -> None:
            workers_event()
            if flush_check[0] is not None:
                flush_check[0]()

        run_id = os.environ.get(RUN_ID_ENV, "-")
        with driver:
            async_driver = AsyncEvalDriver(
                driver,
                max_inflight=max_inflight,
                telemetry=self.telemetry,
                heartbeat=heartbeat_fn,
                heartbeat_interval=min(self.flush_interval, 2.0),
                eval_batch=self.eval_batch,
                make_batch_work=make_batch_work,
            )
            for start in range(0, len(pending), self.batch_size):
                batch = pending[start : start + self.batch_size]
                if self.lease:
                    batch = self._claim_batch(batch, counts)
                elif start:
                    batch = self._fresh_batch(batch, counts)
                if not batch:
                    emit()
                    continue
                ids = [job.job_id for job in batch]
                job_by_id = {job.job_id: job for job in batch}
                job_lookup.clear()
                job_lookup.update(job_by_id)
                t_started = {job.job_id: time.perf_counter() for job in batch}
                span_by_id = {job.job_id: new_span_id() for job in batch}
                recorded: Set[str] = set()
                record_buf: List[dict] = []
                last_flush = [time.monotonic()]
                sources = [
                    EvalSource(
                        key=job.job_id,
                        opt=build_job_optimizer(job),
                        make_work=partial(proposal_work, job),
                        batch_key=f"{job.function}:{job.dim}",
                    )
                    for job in batch
                ]

                def flush_records() -> None:
                    last_flush[0] = time.monotonic()
                    if not record_buf:
                        return
                    flushed = record_buf[:]
                    record_buf.clear()
                    self._record_batch(flushed, counts)
                    for rec in flushed:
                        recorded.add(rec["job_id"])
                        executed.add(rec["job_id"])
                    emit()

                def check_flush() -> None:
                    if time.monotonic() - last_flush[0] >= self.flush_interval:
                        flush_records()

                def on_finished(src, result, error) -> None:
                    job = job_by_id[src.key]
                    record_buf.append({
                        "job_id": job.job_id,
                        "status": STATUS_DONE if error is None else STATUS_FAILED,
                        "job": job.to_dict(),
                        "result": None if result is None else result.to_dict(),
                        "error": error,
                        "elapsed_s": time.perf_counter() - t_started[src.key],
                        "run_id": run_id,
                        "span_id": span_by_id[src.key],
                    })
                    if len(record_buf) >= self.batch_size:
                        flush_records()

                flush_check[0] = check_flush
                heartbeat = (
                    _LeaseHeartbeat(self.store, ids, self.runner_id, self.lease_ttl,
                                telemetry=self.telemetry)
                    if self.lease else None
                )
                try:
                    with self.telemetry.span(
                        "evaluate", n_jobs=len(batch), backend="mw-async"
                    ):
                        async_driver.run(sources, on_finished)
                    flush_records()
                except BaseException:
                    if heartbeat is not None:
                        heartbeat.stop()
                        heartbeat = None
                    # Finished-but-unflushed jobs are real results: record
                    # them if at all possible before releasing the rest.
                    try:
                        flush_records()
                    except OSError:  # pragma: no cover - store gone mid-teardown
                        pass
                    if self.lease:
                        self._release_quietly([i for i in ids if i not in recorded])
                    raise
                finally:
                    flush_check[0] = None
                    if heartbeat is not None:
                        heartbeat.stop()
            workers_event()

    @staticmethod
    def _mw_failure_record(job: Job, task) -> dict:
        """Store record for a task the driver gave up on (retries exhausted)."""
        return {
            "job_id": job.job_id,
            "status": STATUS_FAILED,
            "job": job.to_dict(),
            "result": None,
            "error": task.error or "mw task failed",
            "elapsed_s": 0.0,
        }


class Campaign:
    """A campaign directory: ``spec.json`` plus its result store.

    The store is resolved by :func:`~repro.campaign.sharding.open_store`
    behind the :class:`~repro.campaign.backends.base.StoreBackend` seam:
    the legacy single ``results.jsonl`` by default, the sharded
    ``results-<k>.jsonl`` layout when ``shards`` is given, or the engine
    a ``store`` spec (``"jsonl"``, ``"jsonl:N"``, ``"sqlite"``) requests
    — an existing ``store-manifest.json`` always wins, and requesting a
    *conflicting* engine is an error (``campaign migrate-store``
    converts).  ``shards=N`` or ``store="sqlite"`` on a legacy directory
    migrates it in place.  Opening an existing directory with a
    *different* spec is an error — a campaign's grid is fixed at
    creation so that resume semantics stay meaningful.  Re-opening with
    the same (or no) spec resumes.
    """

    def __init__(self, directory, spec: Optional[CampaignSpec] = None,
                 shards: Optional[int] = None,
                 store: Optional[str] = None) -> None:
        engine, store_shards = parse_store_spec(store)
        if store_shards is not None:
            if shards is not None and int(shards) != store_shards:
                raise ValueError(
                    f"conflicting shard counts: shards={shards} vs "
                    f"store={store!r}"
                )
            shards = store_shards
        self.directory = Path(directory)
        spec_path = self.directory / SPEC_FILENAME
        if spec_path.exists():
            existing = CampaignSpec.load(spec_path)
            if spec is not None and not spec.same_grid(existing):
                raise ValueError(
                    f"campaign at {self.directory} already initialised with a "
                    f"different spec ({existing.name!r}); use a new directory"
                )
            self.spec = existing
        else:
            if spec is None:
                raise FileNotFoundError(
                    f"no {SPEC_FILENAME} in {self.directory} and no spec given"
                )
            self.spec = spec
            spec.save(spec_path)
        self.store = open_store(self.directory, shards=shards, engine=engine)
        self._jobs: Optional[List[Job]] = None

    def jobs(self) -> List[Job]:
        """The expanded grid, cached — a campaign's grid is fixed at creation.

        Caching matters for ``watch``: re-expanding (and re-hashing) a
        100k-job grid every poll tick would dwarf the incremental store
        read.
        """
        if self._jobs is None:
            self._jobs = self.spec.expand()
        return self._jobs

    # -- execution --------------------------------------------------------

    def run(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
        max_jobs: Optional[int] = None,
        mw_transport: str = "process",
        mw_affinity: bool = False,
        mw_max_retries: int = 2,
        async_mode: bool = False,
        max_inflight: Optional[int] = None,
        eval_batch: int = 1,
        flush_interval: float = 2.0,
        stagger: bool = False,
        lease: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        runner_id: Optional[str] = None,
        progress: Optional[ProgressCallback] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> CampaignReport:
        """Run (or resume) the pending jobs; see :class:`CampaignRunner`.

        ``telemetry`` defaults to :meth:`Telemetry.from_env` anchored at
        the campaign directory, so setting ``$REPRO_TELEMETRY`` (or the
        CLI's ``--telemetry``) makes the run append its event trace to
        ``<dir>/telemetry.jsonl`` with no further wiring.
        """
        if telemetry is None:
            telemetry = Telemetry.from_env(
                self.directory, runner=runner_id or default_runner_id()
            )
        runner = CampaignRunner(
            self.spec,
            self.store,
            backend=backend,
            max_workers=max_workers,
            chunksize=chunksize,
            batch_size=batch_size,
            mw_transport=mw_transport,
            mw_affinity=mw_affinity,
            mw_max_retries=mw_max_retries,
            async_mode=async_mode,
            max_inflight=max_inflight,
            eval_batch=eval_batch,
            flush_interval=flush_interval,
            stagger=stagger,
            lease=lease,
            lease_ttl=lease_ttl,
            runner_id=runner_id,
            telemetry=telemetry,
        )
        return runner.run(max_jobs=max_jobs, progress=progress)

    # -- maintenance ------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Compact the result store (see :meth:`ResultStore.compact`)."""
        return self.store.compact()

    # -- inspection -------------------------------------------------------

    def status(self) -> dict:
        """Counts of done / failed / pending / claimed jobs, plus per-cell detail.

        ``claimed`` counts unfinished jobs currently under a live lease
        (some runner is executing them right now); it overlays — not
        partitions — the pending/failed counts.  ``cells`` maps each grid
        cell to its own ``{"total", "done", "failed", "claimed"}`` counts,
        ``engine`` names the store engine (``jsonl`` / ``sqlite``), and
        ``shards`` reports the JSONL layout (1 for the legacy file).
        """
        jobs = self.jobs()
        records = {r["job_id"]: r for r in self.store.records()}
        leases = self.store.leases()
        done = failed = claimed = 0
        cells: dict = {}
        for job in jobs:
            state = records.get(job.job_id, {}).get("status")
            is_done = state == STATUS_DONE
            is_failed = state == STATUS_FAILED
            is_claimed = not is_done and job.job_id in leases
            done += is_done
            failed += is_failed
            claimed += is_claimed
            cell = cells.setdefault(
                job.cell, {"total": 0, "done": 0, "failed": 0, "claimed": 0}
            )
            cell["total"] += 1
            cell["done"] += is_done
            cell["failed"] += is_failed
            cell["claimed"] += is_claimed
        return {
            "name": self.spec.name,
            "directory": str(self.directory),
            "n_jobs": len(jobs),
            "done": done,
            "failed": failed,  # failed jobs are retried on the next run
            "pending": len(jobs) - done - failed,
            "claimed": claimed,
            "engine": getattr(self.store, "engine", "jsonl"),
            "shards": getattr(self.store, "n_shards", 1),
            "cells": cells,
        }

    def records(self) -> List[dict]:
        """All store records, deduplicated by job id (last record wins)."""
        return self.store.records()

    def summary(self) -> List[CellSummary]:
        """Per-cell aggregates over completed jobs (see :mod:`.aggregate`)."""
        return summarize(self.store.completed())

    def compare(self, label_a: str, label_b: str, **kwargs) -> PairedComparison:
        """Paired seed-for-seed comparison of two algorithm variants."""
        return compare_labels(self.store.completed(), label_a, label_b, **kwargs)
