"""Campaign execution: resumable parallel sweeps over a job grid.

:class:`CampaignRunner` is the scheduling layer between a
:class:`~repro.campaign.spec.CampaignSpec` and the executors in
:mod:`repro.parallel.backends`: it expands the grid, subtracts jobs the
:class:`~repro.campaign.store.ResultStore` already holds (resume), and maps
:func:`~repro.campaign.execution.run_job` over the remainder in batches.
Batching bounds the blast radius of a crash or Ctrl-C — everything up to
the last completed batch is durably recorded, and ``KeyboardInterrupt``
returns a report instead of unwinding, so the obvious follow-up is simply
to re-run the same command.

:class:`Campaign` is the directory-level façade the CLI and examples use:
``<dir>/spec.json`` plus ``<dir>/results.jsonl``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.campaign.aggregate import CellSummary, PairedComparison, compare_labels, summarize
from repro.campaign.execution import run_job
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import STATUS_DONE, STATUS_FAILED, ResultStore
from repro.parallel.backends import parallel_map

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"


@dataclass
class CampaignReport:
    """What one ``run()`` call did."""

    n_total: int          # jobs in the expanded grid
    n_skipped: int        # already completed in the store (resume)
    n_run: int            # executed this call
    n_done: int           # of those, succeeded
    n_failed: int         # of those, failed
    interrupted: bool = False

    @property
    def n_remaining(self) -> int:
        return self.n_total - self.n_skipped - self.n_done

    def __str__(self) -> str:
        tail = "  [interrupted]" if self.interrupted else ""
        return (
            f"{self.n_total} jobs: {self.n_skipped} already done, "
            f"{self.n_done} completed, {self.n_failed} failed, "
            f"{self.n_remaining} remaining{tail}"
        )


class CampaignRunner:
    """Executes the pending jobs of a spec against a result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = chunksize
        if batch_size is None:
            if backend == "serial":
                batch_size = 1  # record after every job: finest resume grain
            else:
                workers = max_workers or os.cpu_count() or 2
                batch_size = max(1, workers * chunksize)
        self.batch_size = int(batch_size)

    def pending(self) -> List[Job]:
        """Grid jobs not yet completed in the store, in expansion order."""
        done = self.store.completed_ids()
        return [job for job in self.spec.expand() if job.job_id not in done]

    def run(self, max_jobs: Optional[int] = None) -> CampaignReport:
        """Execute pending jobs; returns instead of raising on Ctrl-C.

        ``max_jobs`` caps how many jobs this call executes (useful for
        smoke tests and for simulating an interrupted campaign).
        """
        n_total = len(self.spec.expand())
        pending = self.pending()
        n_skipped = n_total - len(pending)
        if max_jobs is not None:
            pending = pending[: max(0, int(max_jobs))]
        n_done = n_failed = 0
        interrupted = False
        try:
            for start in range(0, len(pending), self.batch_size):
                batch = pending[start : start + self.batch_size]
                records = parallel_map(
                    run_job,
                    batch,
                    backend=self.backend,
                    max_workers=self.max_workers,
                    chunksize=self.chunksize,
                )
                for rec in records:
                    self.store.record(rec)
                    if rec["status"] == STATUS_DONE:
                        n_done += 1
                    else:
                        n_failed += 1
        except KeyboardInterrupt:
            interrupted = True
        return CampaignReport(
            n_total=n_total,
            n_skipped=n_skipped,
            n_run=n_done + n_failed,
            n_done=n_done,
            n_failed=n_failed,
            interrupted=interrupted,
        )


class Campaign:
    """A campaign directory: ``spec.json`` + ``results.jsonl``.

    Opening an existing directory with a *different* spec is an error — a
    campaign's grid is fixed at creation so that resume semantics stay
    meaningful.  Re-opening with the same (or no) spec resumes.
    """

    def __init__(self, directory, spec: Optional[CampaignSpec] = None) -> None:
        self.directory = Path(directory)
        spec_path = self.directory / SPEC_FILENAME
        if spec_path.exists():
            existing = CampaignSpec.load(spec_path)
            if spec is not None and not spec.same_grid(existing):
                raise ValueError(
                    f"campaign at {self.directory} already initialised with a "
                    f"different spec ({existing.name!r}); use a new directory"
                )
            self.spec = existing
        else:
            if spec is None:
                raise FileNotFoundError(
                    f"no {SPEC_FILENAME} in {self.directory} and no spec given"
                )
            self.spec = spec
            spec.save(spec_path)
        self.store = ResultStore(self.directory / RESULTS_FILENAME)

    # -- execution --------------------------------------------------------

    def run(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
        max_jobs: Optional[int] = None,
    ) -> CampaignReport:
        runner = CampaignRunner(
            self.spec,
            self.store,
            backend=backend,
            max_workers=max_workers,
            chunksize=chunksize,
            batch_size=batch_size,
        )
        return runner.run(max_jobs=max_jobs)

    # -- inspection -------------------------------------------------------

    def status(self) -> dict:
        """Counts of done / failed / pending jobs plus per-cell progress."""
        jobs = self.spec.expand()
        records = {r["job_id"]: r for r in self.store.records()}
        done = sum(
            1 for j in jobs if records.get(j.job_id, {}).get("status") == STATUS_DONE
        )
        failed = sum(
            1 for j in jobs if records.get(j.job_id, {}).get("status") == STATUS_FAILED
        )
        cells: dict = {}
        for job in jobs:
            key = job.cell
            total, cell_done = cells.get(key, (0, 0))
            is_done = records.get(job.job_id, {}).get("status") == STATUS_DONE
            cells[key] = (total + 1, cell_done + (1 if is_done else 0))
        return {
            "name": self.spec.name,
            "directory": str(self.directory),
            "n_jobs": len(jobs),
            "done": done,
            "failed": failed,  # failed jobs are retried on the next run
            "pending": len(jobs) - done - failed,
            "cells": cells,
        }

    def records(self) -> List[dict]:
        return self.store.records()

    def summary(self) -> List[CellSummary]:
        """Per-cell aggregates over completed jobs (see :mod:`.aggregate`)."""
        return summarize(self.store.completed())

    def compare(self, label_a: str, label_b: str, **kwargs) -> PairedComparison:
        """Paired seed-for-seed comparison of two algorithm variants."""
        return compare_labels(self.store.completed(), label_a, label_b, **kwargs)
