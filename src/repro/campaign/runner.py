"""Campaign execution: resumable parallel sweeps over a job grid.

:class:`CampaignRunner` is the scheduling layer between a
:class:`~repro.campaign.spec.CampaignSpec` and an executor: it expands the
grid, subtracts jobs the :class:`~repro.campaign.store.ResultStore` already
holds (resume), and runs the remainder in batches on one of four backends —
``serial`` / ``thread`` / ``process`` via
:func:`~repro.parallel.backends.parallel_map`, or ``mw``, which dispatches
each job as an :class:`~repro.mw.task.MWTask` through
:class:`~repro.mw.MWDriver` (crashed workers requeue their tasks; affinity
optionally pins jobs to worker ranks).

Batching bounds the blast radius of a crash or Ctrl-C — everything up to
the last completed batch is durably recorded, and ``KeyboardInterrupt``
returns a report instead of unwinding, so the obvious follow-up is simply
to re-run the same command.  Before each batch the runner re-reads the
store, so several runner processes — or hosts sharing a filesystem —
can *cooperatively drain one campaign*: jobs a peer completed since this
runner expanded its pending list are shed instead of re-executed.  Because
job results are deterministic in the job, the rare overlap (two runners
in-flight on the same job) is harmless: both append identical records and
last-record-wins deduplication absorbs it.

:class:`Campaign` is the directory-level façade the CLI and examples use:
``<dir>/spec.json`` plus ``<dir>/results.jsonl``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from repro.campaign.aggregate import CellSummary, PairedComparison, compare_labels, summarize
from repro.campaign.execution import run_job
from repro.campaign.progress import ProgressSnapshot
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_FAILED,
    CompactionStats,
    ResultStore,
)
from repro.mw.transport import TRANSPORT_NAMES, is_tcp_spec
from repro.parallel.backends import parallel_map

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"

#: Execution backends a runner accepts.
RUNNER_BACKENDS = ("serial", "thread", "process", "mw")
#: Same-host transports the ``mw`` backend can put under the driver
#: (a ``tcp://host:port`` listen URL is also accepted — see
#: :mod:`repro.mw.tcp` and ``docs/CAMPAIGNS.md`` on cross-host campaigns).
#: Owned by :mod:`repro.mw.transport`; re-exported here for campaign users.
MW_TRANSPORTS = TRANSPORT_NAMES

ProgressCallback = Callable[[ProgressSnapshot], None]


def validate_mw_transport(spec: str) -> None:
    """Raise ``ValueError`` unless ``spec`` names a usable mw transport.

    Shared by :class:`CampaignRunner` and the CLI (which validates before
    launching a run, so a typo'd ``--transport`` fails immediately instead
    of surfacing as a mid-run error).  The set of valid specs is owned by
    :mod:`repro.mw.transport`; this only rephrases its answer in campaign
    terms.
    """
    if spec not in TRANSPORT_NAMES and not is_tcp_spec(spec):
        raise ValueError(
            f"mw_transport must be one of {TRANSPORT_NAMES} or a "
            f"tcp://host:port URL, got {spec!r}"
        )


@dataclass
class CampaignReport:
    """What one ``run()`` call did."""

    n_total: int          # jobs in the expanded grid
    n_skipped: int        # already completed in the store (resume)
    n_run: int            # executed this call
    n_done: int           # of those, succeeded
    n_failed: int         # of those, failed
    n_shed: int = 0       # completed by a cooperating runner mid-flight
    interrupted: bool = False

    @property
    def n_remaining(self) -> int:
        """Jobs still not completed anywhere after this call."""
        return self.n_total - self.n_skipped - self.n_done - self.n_shed

    def __str__(self) -> str:
        shed = f", {self.n_shed} shed to peers" if self.n_shed else ""
        tail = "  [interrupted]" if self.interrupted else ""
        return (
            f"{self.n_total} jobs: {self.n_skipped} already done, "
            f"{self.n_done} completed, {self.n_failed} failed{shed}, "
            f"{self.n_remaining} remaining{tail}"
        )


class CampaignRunner:
    """Executes the pending jobs of a spec against a result store.

    Parameters
    ----------
    spec:
        The declarative grid to drain.
    store:
        Result store shared by every cooperating runner (resume skip-set
        plus the append target).
    backend:
        ``serial`` / ``thread`` / ``process`` (via ``parallel_map``) or
        ``mw`` (via :class:`~repro.mw.MWDriver`).
    max_workers:
        Worker count for the parallel backends (``mw``: driver workers).
    chunksize:
        Jobs per IPC message on the ``process`` backend.
    batch_size:
        Jobs between store writes — the resume granularity.  Defaults to
        1 for ``serial`` and ``workers * chunksize`` otherwise.
    mw_transport:
        What the mw workers run on: ``inproc`` (deterministic, tests),
        ``threaded``, ``process`` (real parallelism; the default), or a
        ``tcp://host:port`` listen URL — the master waits there for
        standalone ``python -m repro mw-worker`` processes, which may sit
        on other hosts with no shared filesystem.
    mw_affinity:
        Pin batch jobs round-robin to worker ranks (the paper restarts a
        worker "on the same processors"; affinity keeps a job's retries
        on its preferred rank when it is idle).
    mw_max_retries:
        Requeues per task after worker errors or crashes before the job
        is recorded as failed.
    refresh_pending:
        Re-read the store before each batch (after the first) and shed
        jobs a cooperating runner has completed.  Costs one incremental
        file scan per batch; disable only for strictly single-runner use.
    stagger:
        Rotate this runner's pending list by a PID-derived offset so
        concurrent runners traverse disjoint regions of the grid and the
        periodic re-read actually sheds peer completions.  Without it,
        runners started simultaneously walk the grid in lockstep and
        duplicate (harmlessly, but wastefully) each other's work.  Off by
        default because single-runner resume semantics are easier to
        reason about in expansion order.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
        mw_transport: str = "process",
        mw_affinity: bool = False,
        mw_max_retries: int = 2,
        refresh_pending: bool = True,
        stagger: bool = False,
    ) -> None:
        if backend not in RUNNER_BACKENDS:
            raise ValueError(
                f"backend must be one of {RUNNER_BACKENDS}, got {backend!r}"
            )
        validate_mw_transport(mw_transport)
        self.spec = spec
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.mw_transport = mw_transport
        self.mw_affinity = bool(mw_affinity)
        self.mw_max_retries = int(mw_max_retries)
        self.refresh_pending = bool(refresh_pending)
        self.stagger = bool(stagger)
        if batch_size is None:
            if backend == "serial":
                batch_size = 1  # record after every job: finest resume grain
            else:
                workers = max_workers or os.cpu_count() or 2
                batch_size = max(1, workers * chunksize)
        self.batch_size = int(batch_size)

    def pending(self) -> List[Job]:
        """Grid jobs not yet completed in the store, in expansion order."""
        done = self.store.completed_ids()
        return [job for job in self.spec.expand() if job.job_id not in done]

    def run(
        self,
        max_jobs: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute pending jobs; returns instead of raising on Ctrl-C.

        ``max_jobs`` caps how many jobs this call executes (useful for
        smoke tests and for simulating an interrupted campaign).
        ``progress`` is called with a
        :class:`~repro.campaign.progress.ProgressSnapshot` after every
        recorded batch — the ``--progress`` heartbeat.
        """
        n_total = len(self.spec.expand())
        pending = self.pending()
        n_skipped = n_total - len(pending)
        if max_jobs is not None:
            pending = pending[: max(0, int(max_jobs))]
        if self.stagger and len(pending) > 1:
            # Disjoint, batch-aligned starting regions per runner;
            # completions meet in the middle via the periodic store
            # re-read.  Offsetting by whole batches keeps the offset
            # pid-sensitive even when batch_size divides len(pending).
            n_batches = -(-len(pending) // self.batch_size)
            offset = (os.getpid() % n_batches) * self.batch_size
            pending = pending[offset:] + pending[:offset]
        counts = {"done": 0, "failed": 0, "shed": 0}
        t0 = time.monotonic()

        def emit() -> None:
            if progress is None:
                return
            elapsed = max(time.monotonic() - t0, 1e-9)
            progress(
                ProgressSnapshot(
                    campaign=self.spec.name,
                    n_total=n_total,
                    done=n_skipped + counts["done"] + counts["shed"],
                    failed=counts["failed"],
                    elapsed_s=elapsed,
                    rate=counts["done"] / elapsed,
                )
            )

        interrupted = False
        try:
            if self.backend == "mw":
                self._run_mw(pending, counts, emit)
            else:
                self._run_batches(pending, counts, emit)
        except KeyboardInterrupt:
            interrupted = True
        return CampaignReport(
            n_total=n_total,
            n_skipped=n_skipped,
            n_run=counts["done"] + counts["failed"],
            n_done=counts["done"],
            n_failed=counts["failed"],
            n_shed=counts["shed"],
            interrupted=interrupted,
        )

    # -- backend paths -----------------------------------------------------

    def _fresh_batch(self, batch: List[Job], counts: dict) -> List[Job]:
        """Drop jobs a cooperating runner completed since our expansion."""
        if not self.refresh_pending:
            return batch
        done = self.store.completed_ids()
        fresh = [job for job in batch if job.job_id not in done]
        counts["shed"] += len(batch) - len(fresh)
        return fresh

    def _record_batch(self, records: List[dict], counts: dict) -> None:
        """Append one batch of records, updating the done/failed counters."""
        for rec in records:
            self.store.record(rec)
            if rec["status"] == STATUS_DONE:
                counts["done"] += 1
            else:
                counts["failed"] += 1

    def _run_batches(self, pending: List[Job], counts: dict, emit) -> None:
        """serial / thread / process path: ``parallel_map`` per batch."""
        for start in range(0, len(pending), self.batch_size):
            batch = pending[start : start + self.batch_size]
            if start:
                batch = self._fresh_batch(batch, counts)
                if not batch:
                    emit()
                    continue
            records = parallel_map(
                run_job,
                batch,
                backend=self.backend,
                max_workers=self.max_workers,
                chunksize=self.chunksize,
            )
            self._record_batch(records, counts)
            emit()

    def _run_mw(self, pending: List[Job], counts: dict, emit) -> None:
        """mw path: one long-lived driver, one :class:`MWTask` per job.

        Worker crashes on the ``process`` transport requeue the in-flight
        task (up to ``mw_max_retries``); a task the driver gives up on is
        recorded as failed, so the next ``run`` retries the job like any
        other failure.
        """
        if not pending:
            return
        from repro.campaign.execution import mw_job_executor
        from repro.campaign.spec import _is_plain_json
        from repro.mw.driver import MWDriver

        for job in pending:
            if not _is_plain_json(job.options):
                # The other backends pickle the Job intact; mw ships it as a
                # codec dict, which would silently stringify rich options.
                raise ValueError(
                    f"job {job.label!r} has non-JSON options {job.options!r}; "
                    f"the mw backend serializes jobs as plain JSON — use the "
                    f"serial/thread/process backend, or express the options "
                    f"as plain JSON"
                )

        n_workers = self.max_workers or os.cpu_count() or 2
        n_workers = max(1, min(n_workers, len(pending)))
        driver = MWDriver(
            mw_job_executor,
            n_workers=n_workers,
            backend=self.mw_transport,
            max_retries=self.mw_max_retries,
            seed=0,
        )
        with driver:
            for start in range(0, len(pending), self.batch_size):
                batch = pending[start : start + self.batch_size]
                if start:
                    batch = self._fresh_batch(batch, counts)
                    if not batch:
                        emit()
                        continue
                tasks = [
                    driver.submit(
                        job.to_dict(),
                        affinity=(i % n_workers) + 1 if self.mw_affinity else None,
                    )
                    for i, job in enumerate(batch)
                ]
                driver.wait_all()
                records = [
                    task.result if task.done else self._mw_failure_record(job, task)
                    for job, task in zip(batch, tasks)
                ]
                self._record_batch(records, counts)
                emit()

    @staticmethod
    def _mw_failure_record(job: Job, task) -> dict:
        """Store record for a task the driver gave up on (retries exhausted)."""
        return {
            "job_id": job.job_id,
            "status": STATUS_FAILED,
            "job": job.to_dict(),
            "result": None,
            "error": task.error or "mw task failed",
            "elapsed_s": 0.0,
        }


class Campaign:
    """A campaign directory: ``spec.json`` + ``results.jsonl``.

    Opening an existing directory with a *different* spec is an error — a
    campaign's grid is fixed at creation so that resume semantics stay
    meaningful.  Re-opening with the same (or no) spec resumes.
    """

    def __init__(self, directory, spec: Optional[CampaignSpec] = None) -> None:
        self.directory = Path(directory)
        spec_path = self.directory / SPEC_FILENAME
        if spec_path.exists():
            existing = CampaignSpec.load(spec_path)
            if spec is not None and not spec.same_grid(existing):
                raise ValueError(
                    f"campaign at {self.directory} already initialised with a "
                    f"different spec ({existing.name!r}); use a new directory"
                )
            self.spec = existing
        else:
            if spec is None:
                raise FileNotFoundError(
                    f"no {SPEC_FILENAME} in {self.directory} and no spec given"
                )
            self.spec = spec
            spec.save(spec_path)
        self.store = ResultStore(self.directory / RESULTS_FILENAME)
        self._jobs: Optional[List[Job]] = None

    def jobs(self) -> List[Job]:
        """The expanded grid, cached — a campaign's grid is fixed at creation.

        Caching matters for ``watch``: re-expanding (and re-hashing) a
        100k-job grid every poll tick would dwarf the incremental store
        read.
        """
        if self._jobs is None:
            self._jobs = self.spec.expand()
        return self._jobs

    # -- execution --------------------------------------------------------

    def run(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        batch_size: Optional[int] = None,
        max_jobs: Optional[int] = None,
        mw_transport: str = "process",
        mw_affinity: bool = False,
        mw_max_retries: int = 2,
        stagger: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Run (or resume) the pending jobs; see :class:`CampaignRunner`."""
        runner = CampaignRunner(
            self.spec,
            self.store,
            backend=backend,
            max_workers=max_workers,
            chunksize=chunksize,
            batch_size=batch_size,
            mw_transport=mw_transport,
            mw_affinity=mw_affinity,
            mw_max_retries=mw_max_retries,
            stagger=stagger,
        )
        return runner.run(max_jobs=max_jobs, progress=progress)

    # -- maintenance ------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Compact the result store (see :meth:`ResultStore.compact`)."""
        return self.store.compact()

    # -- inspection -------------------------------------------------------

    def status(self) -> dict:
        """Counts of done / failed / pending jobs plus per-cell progress."""
        jobs = self.jobs()
        records = {r["job_id"]: r for r in self.store.records()}
        done = failed = 0
        cells: dict = {}
        for job in jobs:
            state = records.get(job.job_id, {}).get("status")
            is_done = state == STATUS_DONE
            done += is_done
            failed += state == STATUS_FAILED
            total, cell_done = cells.get(job.cell, (0, 0))
            cells[job.cell] = (total + 1, cell_done + is_done)
        return {
            "name": self.spec.name,
            "directory": str(self.directory),
            "n_jobs": len(jobs),
            "done": done,
            "failed": failed,  # failed jobs are retried on the next run
            "pending": len(jobs) - done - failed,
            "cells": cells,
        }

    def records(self) -> List[dict]:
        """All store records, deduplicated by job id (last record wins)."""
        return self.store.records()

    def summary(self) -> List[CellSummary]:
        """Per-cell aggregates over completed jobs (see :mod:`.aggregate`)."""
        return summarize(self.store.completed())

    def compare(self, label_a: str, label_b: str, **kwargs) -> PairedComparison:
        """Paired seed-for-seed comparison of two algorithm variants."""
        return compare_labels(self.store.completed(), label_a, label_b, **kwargs)
