"""Job execution: the §3.2/§3.3 controlled-noise protocol, jobified.

One :class:`~repro.campaign.spec.Job` maps to one optimizer run: draw the
initial simplex from the job's seed stream, wrap the test function with
``resample``-mode Gaussian noise from an *independent* stream (so paired
comparisons across algorithms share initial simplexes, as in the paper's
figures), run under tolerance + walltime + step-cap termination.

The seed discipline is part of the job's identity: the same job produces
bitwise-identical results on any backend, in any execution order, which is
what lets an interrupted-and-resumed campaign reproduce an uninterrupted
run exactly.

Async mode (``campaign run --async``) drops the work unit from a whole job
to a single ask/tell proposal: :func:`proposal_work` serializes one
deterministic surface evaluation, :func:`mw_eval_executor` answers it on a
worker, and the master merges noise at tell time.  The chaos seams
(``$REPRO_EVAL_SLOW``, ``$REPRO_EVAL_DROP_ONCE``) and the ``slow_*``
executor variants exist so tests and CI can inject stragglers and lost
evaluations at that granularity.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from repro.campaign.spec import Job
from repro.campaign.store import STATUS_DONE, STATUS_FAILED
from repro.core.driver import make_optimizer
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.functions import get_function, random_vertices
from repro.functions.suite import TestFunction
from repro.noise import StochasticFunction
from repro.telemetry import new_span_id

#: Offset decoupling the noise stream from the initial-state stream.
NOISE_SEED_OFFSET = 1_000_003

#: Environment variable naming an execution audit log.  When set, every
#: job execution appends one ``O_APPEND`` line (so entries from any
#: number of runner processes interleave whole) to that file *before*
#: running — the ground truth for "how many times was this job actually
#: evaluated", which store records cannot answer (last-record-wins hides
#: duplicates).  Each line is ``job_id run_id span_id worker``: the run
#: id identifies the ``run()`` call that dispatched the execution (via
#: ``$REPRO_RUN_ID``), the span id is fresh per execution attempt and
#: also rides the store record and the telemetry trace's ``job`` event,
#: so audit entries correlate with traces and exactly-once can be
#: asserted *per span*.  The trailing ``worker`` token is placement
#: evidence — ``rank:cap1,cap2`` (or just ``rank``, or ``-`` when no
#: worker context exists, e.g. the serial backend) — which is how the CI
#: scheduler-smoke job proves constrained jobs only ran on
#: capability-matching workers.  Fields are whitespace-free, so
#: ``line.split()`` indexes 0–2 parse identically to the three-field
#: format older logs used.  The chaos test suite and the CI chaos-smoke
#: job assert exactly-once execution through this log.
JOB_AUDIT_ENV = "REPRO_JOB_AUDIT_LOG"

#: Environment variable carrying the dispatching run's id into executing
#: processes (the runner exports it; pool / mw workers inherit it).
RUN_ID_ENV = "REPRO_RUN_ID"


def worker_token(context) -> str:
    """Whitespace-free placement token for a worker context, ``"-"`` if none.

    ``rank:cap1,cap2`` when the worker declared capabilities, bare
    ``rank`` when it declared none — the audit log's fourth field.
    """
    rank = getattr(context, "rank", None)
    if rank is None:
        return "-"
    caps = sorted(getattr(context, "caps", None) or ())
    return f"{rank}:{','.join(caps)}" if caps else str(rank)


def _audit_execution(job_id: str, run_id: str, span_id: str,
                     worker: str = "-") -> None:
    """Append ``job_id run_id span_id worker`` to ``$REPRO_JOB_AUDIT_LOG``, if set."""
    path = os.environ.get(JOB_AUDIT_ENV)
    if not path:
        return
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, f"{job_id} {run_id} {span_id} {worker}\n".encode("utf-8"))
    finally:
        os.close(fd)


def job_function(job: Job) -> TestFunction:
    """The deterministic test function a job optimizes."""
    return get_function(job.function, job.dim)


def build_job_optimizer(job: Job, record_trace: bool = False):
    """Construct (but do not run) the optimizer a job describes.

    The seed discipline lives here: initial simplex from ``job.seed``, noise
    from the decoupled ``job.seed + NOISE_SEED_OFFSET`` stream.  ``execute_job``
    runs the returned optimizer to termination; the async campaign driver
    instead drives it through the ask/tell seam, farming each proposal out as
    its own mw task.
    """
    f = job_function(job)
    init_rng = np.random.default_rng(job.seed)
    vertices = random_vertices(job.dim, low=job.low, high=job.high, rng=init_rng)
    noise_rng = np.random.default_rng(job.seed + NOISE_SEED_OFFSET)
    func = StochasticFunction(f, sigma0=job.sigma0, mode=job.noise_mode, rng=noise_rng)
    termination = default_termination(
        tau=job.tau, walltime=job.walltime, max_steps=job.max_steps
    )
    return make_optimizer(
        job.algorithm,
        func,
        vertices,
        termination=termination,
        record_trace=record_trace,
        **job.options,
    )


def execute_job(job: Job, record_trace: bool = False) -> OptimizationResult:
    """Run one job's optimizer to termination (deterministic in the job)."""
    return build_job_optimizer(job, record_trace=record_trace).run()


def run_job(job: Job) -> dict:
    """Execute a job and package the outcome as a store record.

    Module-level (picklable) so the ``process`` backend can ship it to
    workers; exceptions become ``failed`` records instead of poisoning the
    whole batch.
    """
    return _run_job_record(job)


def mw_job_executor(work: dict, context) -> dict:
    """MW executor adapter: run one job payload, return its store record.

    ``work`` is a :meth:`Job.to_dict` payload (plain JSON, so it rides the
    mw codec across the ``process`` transport) and ``context`` is the
    worker's :class:`~repro.mw.worker.WorkerContext` — the job's *result*
    is a deterministic function of the job alone (which is what makes
    cooperative multi-runner draining safe: whichever runner or host
    executes a job appends the identical record), but the context's rank
    and capability vector are stamped on the audit line and record as
    placement evidence.

    Module-level so process-transport workers can import it by reference.
    """
    return _run_job_record(Job.from_dict(work), worker=worker_token(context))


def _run_job_record(job: Job, worker: str = "-") -> dict:
    run_id = os.environ.get(RUN_ID_ENV, "-")
    span_id = new_span_id()
    _audit_execution(job.job_id, run_id, span_id, worker)
    t0 = time.perf_counter()
    try:
        result = execute_job(job)
    except Exception as exc:  # noqa: BLE001 - one bad job must not kill the sweep
        return {
            "job_id": job.job_id,
            "status": STATUS_FAILED,
            "job": job.to_dict(),
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - t0,
            "run_id": run_id,
            "span_id": span_id,
            "worker": worker,
        }
    return {
        "job_id": job.job_id,
        "status": STATUS_DONE,
        "job": job.to_dict(),
        "result": result.to_dict(),
        "error": None,
        "elapsed_s": time.perf_counter() - t0,
        "run_id": run_id,
        "span_id": span_id,
        "worker": worker,
    }


# -- proposal-granular execution (async mode) ---------------------------------

#: Chaos seam: ``"rank:seconds"`` — the worker with that rank sleeps the
#: given seconds before answering each evaluation.  Models a straggler
#: node; the async chaos suite uses it to show that one slow worker no
#: longer stalls every other job at an iteration barrier.
EVAL_SLOW_ENV = "REPRO_EVAL_SLOW"

#: Chaos seam: ``"markerpath:pattern"`` — the first evaluation whose audit
#: key (``job_id/proposal_id``) contains ``pattern`` raises instead of
#: answering, exactly once globally (the marker file is created with
#: ``O_CREAT | O_EXCL``, so concurrent workers race for a single drop).
#: Models a lost work unit; the mw layer's retry machinery must requeue it.
EVAL_DROP_ONCE_ENV = "REPRO_EVAL_DROP_ONCE"


def proposal_work(job: Job, proposal) -> dict:
    """Wire payload for one ask/tell proposal (plain JSON for the mw codec).

    Ships only what the worker needs to compute the *deterministic* surface
    value: the function name, dimension and the proposal's theta.  No noise
    state crosses the wire — noise is applied master-side at merge time
    (:meth:`~repro.noise.stochastic.StochasticFunction.merge_external`), which
    is what keeps the job's rng stream independent of reply order.
    """
    return {
        "kind": "eval",
        "job_id": job.job_id,
        "proposal_id": proposal.id,
        "function": job.function,
        "dim": job.dim,
        "theta": [float(x) for x in np.asarray(proposal.theta, dtype=float)],
        "dt": float(proposal.dt),
        "label": proposal.label,
    }


def batch_proposal_work(pairs) -> dict:
    """Wire payload for a batched frame of proposals (``--eval-batch q``).

    ``pairs`` is a list of ``(job, proposal)`` tuples that must all share
    one function name and dimension — the unit a single vectorized
    ``TestFunction.batch`` call can evaluate.  The payload is *columnar*
    (one ``(q, d)`` theta array, parallel id lists) rather than a list of
    per-proposal dicts: the ndarray crosses the codec as one raw-bytes
    tag, so frame encoding cost stays flat in ``q`` instead of growing a
    struct call per field.  Column order is the frame order: the executor
    returns ``values`` aligned with it, and the async driver's tell
    fan-in splits them back to per-proposal ids.

    Only what the worker consumes crosses the wire: ids (for the audit and
    drop-once chaos seams) and thetas.  Per-proposal ``dt``/``label`` stay
    master-side in the driver's task map — they are merge-time inputs, not
    evaluation inputs.
    """
    first_job = pairs[0][0]
    for job, _ in pairs:
        if job.function != first_job.function or job.dim != first_job.dim:
            raise ValueError(
                f"batch frame mixes objectives: {job.function}:{job.dim} "
                f"vs {first_job.function}:{first_job.dim}"
            )
    return {
        "kind": "eval_batch",
        "function": first_job.function,
        "dim": first_job.dim,
        "job_ids": [job.job_id for job, _ in pairs],
        "proposal_ids": [proposal.id for _, proposal in pairs],
        "thetas": np.ascontiguousarray(
            [np.asarray(p.theta, dtype=float) for _, p in pairs], dtype=float
        ),
    }


def _mw_eval_batch(work: dict, context) -> dict:
    """Evaluate one ``eval_batch`` frame: per-item audit, one vectorized call.

    Chaos semantics hold *per batch*: every member is audited (fresh span
    each) before the seams fire, and a drop-once hit on any member raises
    for the whole frame — the mw layer requeues it, so each member of a
    dropped frame shows exactly two audit lines with distinct spans.  The
    straggler sleep scales by the item count, costing what ``q`` scalar
    evaluations would have.

    The reply carries ``span_ids``/``keys`` only while the audit seam is
    active — on the hot path the reply is just the values vector, so the
    per-frame codec cost stays flat in ``q`` in both directions.
    """
    audited = bool(os.environ.get(JOB_AUDIT_ENV))
    keys = [
        f"{job_id}/{proposal_id}"
        for job_id, proposal_id in zip(work["job_ids"], work["proposal_ids"])
    ]
    span_ids = []
    if audited:
        run_id = os.environ.get(RUN_ID_ENV, "-")
        worker = worker_token(context)
        for key in keys:
            span_id = new_span_id()
            _audit_execution(key, run_id, span_id, worker)
            span_ids.append(span_id)

    drop_spec = os.environ.get(EVAL_DROP_ONCE_ENV)
    if drop_spec:
        marker, _, pattern = drop_spec.rpartition(":")
        if marker and pattern:
            for key in keys:
                if pattern not in key:
                    continue
                try:
                    os.close(
                        os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
                    )
                except FileExistsError:
                    pass  # someone already took the one drop
                else:
                    raise RuntimeError(f"chaos: dropped evaluation {key}")

    slow_spec = os.environ.get(EVAL_SLOW_ENV)
    if slow_spec:
        rank_s, _, seconds_s = slow_spec.partition(":")
        if rank_s and seconds_s and int(rank_s) == getattr(context, "rank", -1):
            time.sleep(float(seconds_s) * len(keys))

    f = get_function(work["function"], int(work["dim"]))
    thetas = np.ascontiguousarray(work["thetas"], dtype=float)
    values = f.batch(thetas)
    reply = {
        "kind": "eval_batch",
        "values": [float(v) for v in values],
    }
    if audited:
        reply["span_ids"] = span_ids
        reply["keys"] = keys
    return reply


def mw_eval_executor(work: dict, context) -> dict:
    """MW executor adapter for one proposal evaluation (async mode).

    Audits the attempt (key ``job_id/proposal_id``, fresh span id) *before*
    the chaos seams fire, so a dropped evaluation still leaves its audit
    line — that is how the chaos suite counts "requeued exactly once":
    exactly two audit lines with distinct spans for the dropped proposal,
    one line for every other.  A payload of ``kind == "eval_batch"``
    (built by :func:`batch_proposal_work`) dispatches to the vectorized
    batch kernel instead.  Module-level so process/tcp workers can import
    it by reference (``mw-worker --executor``).
    """
    if work.get("kind") == "eval_batch":
        return _mw_eval_batch(work, context)
    job_id = work["job_id"]
    proposal_id = work["proposal_id"]
    key = f"{job_id}/{proposal_id}"
    run_id = os.environ.get(RUN_ID_ENV, "-")
    span_id = new_span_id()
    _audit_execution(key, run_id, span_id, worker_token(context))

    drop_spec = os.environ.get(EVAL_DROP_ONCE_ENV)
    if drop_spec:
        marker, _, pattern = drop_spec.rpartition(":")
        if marker and pattern and pattern in key:
            try:
                os.close(os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644))
            except FileExistsError:
                pass  # someone already took the one drop
            else:
                raise RuntimeError(f"chaos: dropped evaluation {key}")

    slow_spec = os.environ.get(EVAL_SLOW_ENV)
    if slow_spec:
        rank_s, _, seconds_s = slow_spec.partition(":")
        if rank_s and seconds_s and int(rank_s) == getattr(context, "rank", -1):
            time.sleep(float(seconds_s))

    f = get_function(work["function"], int(work["dim"]))
    value = float(f(np.asarray(work["theta"], dtype=float)))
    return {"proposal_id": proposal_id, "job_id": job_id, "value": value, "span_id": span_id}


def slow_mw_job_executor(work: dict, context) -> dict:
    """``mw_job_executor`` on a worker whose *evaluations* run slow.

    Emulates the same straggler as :func:`slow_mw_eval_executor` at job
    granularity: after running the job it sleeps ``$REPRO_EVAL_SLOW_S``
    seconds **per underlying function call** the job performed, exactly
    the extra time a per-evaluation slowdown would have cost inline.
    Handed to a single worker via ``mw-worker --executor`` in the
    *barriered* leg of the CI async-smoke job: every batch then waits out
    the straggler's whole job, while the async leg only ever waits on one
    of its evaluations at a time.
    """
    record = mw_job_executor(work, context)
    per_eval = float(os.environ.get("REPRO_EVAL_SLOW_S", "1.0"))
    calls = int((record.get("result") or {}).get("n_underlying_calls", 1))
    time.sleep(per_eval * max(1, calls))
    return record


def slow_mw_eval_executor(work: dict, context) -> dict:
    """``mw_eval_executor`` plus a per-evaluation sleep of ``$REPRO_EVAL_SLOW_S``.

    The async-leg straggler of the CI async-smoke job: the slow worker holds
    one proposal at a time while the fast workers keep the other jobs moving,
    so the async wall clock stays near the fast workers' throughput.  For a
    batched frame the sleep scales by the item count — the time ``q``
    scalar evaluations would have cost.
    """
    n = len(work["job_ids"]) if work.get("kind") == "eval_batch" else 1
    time.sleep(float(os.environ.get("REPRO_EVAL_SLOW_S", "1.0")) * n)
    return mw_eval_executor(work, context)
