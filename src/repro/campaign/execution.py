"""Job execution: the §3.2/§3.3 controlled-noise protocol, jobified.

One :class:`~repro.campaign.spec.Job` maps to one optimizer run: draw the
initial simplex from the job's seed stream, wrap the test function with
``resample``-mode Gaussian noise from an *independent* stream (so paired
comparisons across algorithms share initial simplexes, as in the paper's
figures), run under tolerance + walltime + step-cap termination.

The seed discipline is part of the job's identity: the same job produces
bitwise-identical results on any backend, in any execution order, which is
what lets an interrupted-and-resumed campaign reproduce an uninterrupted
run exactly.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from repro.campaign.spec import Job
from repro.campaign.store import STATUS_DONE, STATUS_FAILED
from repro.core.driver import make_optimizer
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.functions import get_function, random_vertices
from repro.functions.suite import TestFunction
from repro.noise import StochasticFunction
from repro.telemetry import new_span_id

#: Offset decoupling the noise stream from the initial-state stream.
NOISE_SEED_OFFSET = 1_000_003

#: Environment variable naming an execution audit log.  When set, every
#: job execution appends one ``O_APPEND`` line (so entries from any
#: number of runner processes interleave whole) to that file *before*
#: running — the ground truth for "how many times was this job actually
#: evaluated", which store records cannot answer (last-record-wins hides
#: duplicates).  Each line is ``job_id run_id span_id``: the run id
#: identifies the ``run()`` call that dispatched the execution (via
#: ``$REPRO_RUN_ID``), the span id is fresh per execution attempt and
#: also rides the store record and the telemetry trace's ``job`` event,
#: so audit entries correlate with traces and exactly-once can be
#: asserted *per span*.  The chaos test suite and the CI chaos-smoke job
#: assert exactly-once execution through this log.
JOB_AUDIT_ENV = "REPRO_JOB_AUDIT_LOG"

#: Environment variable carrying the dispatching run's id into executing
#: processes (the runner exports it; pool / mw workers inherit it).
RUN_ID_ENV = "REPRO_RUN_ID"


def _audit_execution(job_id: str, run_id: str, span_id: str) -> None:
    """Append ``job_id run_id span_id`` to ``$REPRO_JOB_AUDIT_LOG``, if set."""
    path = os.environ.get(JOB_AUDIT_ENV)
    if not path:
        return
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, f"{job_id} {run_id} {span_id}\n".encode("utf-8"))
    finally:
        os.close(fd)


def job_function(job: Job) -> TestFunction:
    """The deterministic test function a job optimizes."""
    return get_function(job.function, job.dim)


def execute_job(job: Job, record_trace: bool = False) -> OptimizationResult:
    """Run one job's optimizer to termination (deterministic in the job)."""
    f = job_function(job)
    init_rng = np.random.default_rng(job.seed)
    vertices = random_vertices(job.dim, low=job.low, high=job.high, rng=init_rng)
    noise_rng = np.random.default_rng(job.seed + NOISE_SEED_OFFSET)
    func = StochasticFunction(f, sigma0=job.sigma0, mode=job.noise_mode, rng=noise_rng)
    termination = default_termination(
        tau=job.tau, walltime=job.walltime, max_steps=job.max_steps
    )
    opt = make_optimizer(
        job.algorithm,
        func,
        vertices,
        termination=termination,
        record_trace=record_trace,
        **job.options,
    )
    return opt.run()


def run_job(job: Job) -> dict:
    """Execute a job and package the outcome as a store record.

    Module-level (picklable) so the ``process`` backend can ship it to
    workers; exceptions become ``failed`` records instead of poisoning the
    whole batch.
    """
    return _run_job_record(job)


def mw_job_executor(work: dict, context) -> dict:
    """MW executor adapter: run one job payload, return its store record.

    ``work`` is a :meth:`Job.to_dict` payload (plain JSON, so it rides the
    mw codec across the ``process`` transport) and ``context`` is the
    worker's :class:`~repro.mw.worker.WorkerContext` — unused, because a
    job's result is a deterministic function of the job alone, which is
    what makes cooperative multi-runner draining safe: whichever runner
    (or host) executes a job appends the identical record.

    Module-level so process-transport workers can import it by reference.
    """
    return _run_job_record(Job.from_dict(work))


def _run_job_record(job: Job) -> dict:
    run_id = os.environ.get(RUN_ID_ENV, "-")
    span_id = new_span_id()
    _audit_execution(job.job_id, run_id, span_id)
    t0 = time.perf_counter()
    try:
        result = execute_job(job)
    except Exception as exc:  # noqa: BLE001 - one bad job must not kill the sweep
        return {
            "job_id": job.job_id,
            "status": STATUS_FAILED,
            "job": job.to_dict(),
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - t0,
            "run_id": run_id,
            "span_id": span_id,
        }
    return {
        "job_id": job.job_id,
        "status": STATUS_DONE,
        "job": job.to_dict(),
        "result": result.to_dict(),
        "error": None,
        "elapsed_s": time.perf_counter() - t0,
        "run_id": run_id,
        "span_id": span_id,
    }
