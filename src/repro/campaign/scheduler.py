"""Multi-tenant campaign scheduling: one master, many campaigns, one fleet.

The paper's MW layer multiplexes one master over many heterogeneous
workers; a production service goes one step further and multiplexes many
*campaigns* (tenants) over one worker fleet.  This module supplies both
halves of that step:

* :class:`CampaignScheduler` — the pure dispatch policy, in the style of
  the megha/pigeon_sim scheduler: each tenant owns a **two-level queue**
  (high priority drains before low, FIFO within a band) and dispatch
  slots are shared by **deficit-weighted round-robin** — every slot, each
  dispatchable tenant earns credit proportional to its configured weight
  and the tenant with the largest accumulated deficit spends one unit.
  Over any window the slot share of a backlogged tenant converges to
  ``weight / total_weight`` and no non-empty queue waits more than
  ``O(total_weight / weight)`` slots (bounded starvation).  Per-tenant
  **inflight caps** and capability placement (``can_place``) are modelled
  as ineligibility: a capped or unplaceable tenant earns no credit, so it
  neither starves others nor banks an unfair burst for later.
* :class:`MultiCampaignMaster` — the long-lived serve loop behind
  ``python -m repro campaign serve DIR1 DIR2 …``: one
  :class:`~repro.mw.driver.MWDriver` over one transport drains every
  tenant's pending jobs concurrently.  Jobs are claimed from each
  tenant's store under the usual leases (heartbeat-renewed, so a killed
  master's jobs requeue), queued by priority band, dispatched through the
  scheduler whenever the driver's non-blocking :meth:`~repro.mw.driver.
  MWDriver.pump` beat (the PR-7 async seam) frees worker slots, and
  recorded to each tenant's own store the moment they complete — no
  barriers between tenants or batches.

Placement is constraint-checked twice: the scheduler only offers a job
when an idle worker's capability vector covers it, and the driver's
:meth:`~repro.mw.driver.MWDriver._pick_worker` enforces the same rule at
dispatch (constraints are hard; affinity fallbacks are counted in
``repro_sched_fallbacks_total``).  All scheduler decisions surface as
``repro_sched_*`` series; ``campaign serve --status`` renders the
per-tenant view.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.campaign.runner import (
    DEFAULT_LEASE_TTL,
    CampaignReport,
    CampaignRunner,
    _LeaseHeartbeat,
    Campaign,
    default_runner_id,
    validate_mw_transport,
)
from repro.campaign.execution import RUN_ID_ENV
from repro.campaign.spec import PRIORITIES, Job
from repro.telemetry import Telemetry

__all__ = [
    "CampaignScheduler",
    "MultiCampaignMaster",
    "TenantQueue",
    "serve_status",
]


@dataclass
class TenantQueue:
    """One tenant's scheduling state inside a :class:`CampaignScheduler`.

    ``deficit`` is the tenant's deficit-round-robin credit balance:
    incremented by its weight share each slot it is dispatchable,
    decremented by one when it wins the slot.  ``high`` and ``low`` are
    the two FIFO priority bands; ``inflight`` counts dispatched items not
    yet marked complete (compared against ``max_inflight``).
    """

    name: str
    weight: float = 1.0
    max_inflight: Optional[int] = None
    high: Deque[Any] = field(default_factory=deque)
    low: Deque[Any] = field(default_factory=deque)
    deficit: float = 0.0
    inflight: int = 0
    dispatched: int = 0

    def depth(self) -> int:
        """Queued (not yet dispatched) items across both bands."""
        return len(self.high) + len(self.low)

    def peek(self) -> Optional[Any]:
        """The next item this tenant would dispatch (high band first)."""
        if self.high:
            return self.high[0]
        if self.low:
            return self.low[0]
        return None

    def pop(self) -> Any:
        """Remove and return the next item (high band first; FIFO within)."""
        return self.high.popleft() if self.high else self.low.popleft()

    def under_cap(self) -> bool:
        """Whether the tenant may dispatch another item right now."""
        return self.max_inflight is None or self.inflight < self.max_inflight


class CampaignScheduler:
    """Deficit-weighted round-robin over per-tenant two-level queues.

    The policy core of ``campaign serve``, kept free of stores, drivers
    and sockets so its fairness properties are directly testable: items
    are opaque, tenants are names, and the only external input is the
    caller's ``can_place`` predicate (an idle worker whose capability
    vector covers the item exists *right now*).

    Fairness contract, for tenants that stay dispatchable (non-empty
    queue, under their inflight cap, placeable):

    * **proportional share** — over ``S`` consecutive slots a tenant of
      weight ``w`` wins ``S * w / W ± O(n_tenants)`` of them, where ``W``
      is the dispatchable tenants' total weight;
    * **bounded starvation** — the gap between a tenant's consecutive
      wins never exceeds ``ceil(W / w) + n_tenants`` slots;
    * **per-tenant FIFO** — within a priority band, items dispatch in
      arrival order, and the high band fully precedes the low band.

    Parameters
    ----------
    telemetry:
        Metrics context for the ``repro_sched_*`` series; defaults to
        :meth:`Telemetry.from_env`.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.tenants: Dict[str, TenantQueue] = {}
        self.telemetry = telemetry if telemetry is not None else Telemetry.from_env()

    # -- tenant management -------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0,
                   max_inflight: Optional[int] = None) -> TenantQueue:
        """Register a tenant; returns its :class:`TenantQueue`.

        ``weight`` sets the tenant's share of dispatch slots relative to
        the other dispatchable tenants; ``max_inflight`` caps how many of
        its items may be dispatched-but-incomplete at once.
        """
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already registered")
        if not (float(weight) > 0):
            raise ValueError(f"weight must be > 0, got {weight}")
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValueError(f"max_inflight must be >= 1 or None, got {max_inflight}")
        tenant = TenantQueue(name=name, weight=float(weight),
                             max_inflight=max_inflight)
        self.tenants[name] = tenant
        return tenant

    def enqueue(self, name: str, item: Any, priority: str = "low") -> None:
        """Queue one item for a tenant in the given priority band."""
        if priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}, got {priority!r}")
        tenant = self.tenants[name]
        (tenant.high if priority == "high" else tenant.low).append(item)
        self.telemetry.gauge(
            "repro_sched_queue_depth", "Queued (undispatched) jobs per tenant.",
            tenant=name,
        ).set(tenant.depth())

    def depth(self, name: str) -> int:
        """Queued items for one tenant (both bands)."""
        return self.tenants[name].depth()

    def queued(self) -> int:
        """Queued items across every tenant."""
        return sum(t.depth() for t in self.tenants.values())

    def inflight(self) -> int:
        """Dispatched-but-incomplete items across every tenant."""
        return sum(t.inflight for t in self.tenants.values())

    # -- the slot auction --------------------------------------------------

    def select(
        self, can_place: Optional[Callable[[Any], bool]] = None
    ) -> Optional[Tuple[str, Any]]:
        """Fill one dispatch slot; returns ``(tenant, item)`` or ``None``.

        A tenant competes for the slot iff it has queued work, is under
        its inflight cap, and its head item passes ``can_place`` (default:
        everything places).  Competitors each earn ``weight / W`` credit,
        the highest-deficit competitor (registration order breaks ties)
        pops its head item and pays one unit.  Tenants blocked by their
        cap or by placement earn nothing — policy is explicit: they are
        counted in ``repro_sched_blocked_total`` instead of silently
        skipped.

        ``None`` means no tenant can use the slot (all empty, capped, or
        unplaceable); callers stop offering slots until something changes
        (a completion, a worker join, new work).
        """
        competitors: List[TenantQueue] = []
        for tenant in self.tenants.values():
            if not tenant.depth():
                continue
            if not tenant.under_cap():
                self.telemetry.counter(
                    "repro_sched_blocked_total",
                    "Dispatch slots a tenant with queued work could not take.",
                    tenant=tenant.name, reason="inflight_cap",
                ).inc()
                continue
            if can_place is not None and not can_place(tenant.peek()):
                self.telemetry.counter(
                    "repro_sched_blocked_total",
                    "Dispatch slots a tenant with queued work could not take.",
                    tenant=tenant.name, reason="no_capable_worker",
                ).inc()
                continue
            competitors.append(tenant)
        if not competitors:
            return None
        total_weight = sum(t.weight for t in competitors)
        for tenant in competitors:
            tenant.deficit += tenant.weight / total_weight
        winner = max(competitors, key=lambda t: t.deficit)
        winner.deficit -= 1.0
        item = winner.pop()
        winner.inflight += 1
        winner.dispatched += 1
        self.telemetry.counter(
            "repro_sched_dispatch_total", "Dispatch slots won, per tenant.",
            tenant=winner.name,
        ).inc()
        self.telemetry.gauge(
            "repro_sched_queue_depth", "Queued (undispatched) jobs per tenant.",
            tenant=winner.name,
        ).set(winner.depth())
        return winner.name, item

    def mark_complete(self, name: str) -> None:
        """Record one dispatched item of a tenant as finished (frees cap)."""
        tenant = self.tenants[name]
        if tenant.inflight <= 0:
            raise ValueError(f"tenant {name!r} has no inflight items")
        tenant.inflight -= 1

    def stats(self) -> List[dict]:
        """Per-tenant scheduling rows (queue depths, deficit, dispatch tally)."""
        return [
            {
                "tenant": t.name,
                "weight": t.weight,
                "high": len(t.high),
                "low": len(t.low),
                "inflight": t.inflight,
                "max_inflight": t.max_inflight,
                "dispatched": t.dispatched,
                "deficit": t.deficit,
            }
            for t in self.tenants.values()
        ]


class _ServeLeaseHeartbeat(_LeaseHeartbeat):
    """A lease heartbeat over a *changing* id set (one per served tenant).

    The runner's heartbeat renews a fixed batch; a serve loop claims and
    records continuously, so this variant re-reads the tenant's live
    claimed-id snapshot each beat.  An empty snapshot beats for free.
    """

    def __init__(self, store, ids_fn: Callable[[], List[str]], runner: str,
                 ttl: float, telemetry=None) -> None:
        self._ids_fn = ids_fn
        super().__init__(store, [], runner, ttl, telemetry=telemetry)

    def _renew_once(self) -> None:
        ids = self._ids_fn()
        if ids:
            self._store.renew(ids, self._runner, self._ttl)


class _Tenant:
    """Runtime state of one campaign being served (master-internal)."""

    def __init__(self, campaign: Campaign, runner: CampaignRunner,
                 weight: float, max_inflight: Optional[int]) -> None:
        self.campaign = campaign
        self.runner = runner
        self.name = campaign.spec.name
        self.weight = weight
        self.max_inflight = max_inflight
        self.counts = {"done": 0, "failed": 0, "shed": 0, "leased": 0}
        self.backlog: Deque[Job] = deque()
        self.n_total = 0
        self.n_skipped = 0
        self.claimed: Set[str] = set()
        self.lock = threading.Lock()
        self.heartbeat: Optional[_ServeLeaseHeartbeat] = None

    def claimed_ids(self) -> List[str]:
        """Snapshot of ids claimed but not yet recorded (heartbeat input)."""
        with self.lock:
            return list(self.claimed)

    def add_claimed(self, ids: Sequence[str]) -> None:
        """Track freshly granted claims."""
        with self.lock:
            self.claimed.update(ids)

    def drop_claimed(self, ids: Sequence[str]) -> None:
        """Stop tracking ids that were recorded or released."""
        with self.lock:
            self.claimed.difference_update(ids)

    def report(self, interrupted: bool = False) -> CampaignReport:
        """This tenant's :class:`CampaignReport` for the serve call."""
        return CampaignReport(
            n_total=self.n_total,
            n_skipped=self.n_skipped,
            n_run=self.counts["done"] + self.counts["failed"],
            n_done=self.counts["done"],
            n_failed=self.counts["failed"],
            n_shed=self.counts["shed"],
            n_leased=self.counts["leased"],
            interrupted=interrupted,
        )


class MultiCampaignMaster:
    """One long-lived master draining many campaign directories.

    Builds one :class:`~repro.mw.driver.MWDriver` on ``transport`` and
    serves every directory's pending jobs through a
    :class:`CampaignScheduler`: claims ride each tenant's own store
    leases (heartbeat-renewed; a killed master's claims expire and
    requeue), placement honours each job's constraint vector against the
    workers' declared capability vectors, and completed records append to
    the tenant's own store as they arrive.

    Parameters
    ----------
    directories:
        Campaign directories (each with ``spec.json``); tenant names —
        the spec names — must be unique across them.
    transport:
        mw transport spec for the shared fleet: ``process`` (default),
        ``threaded``, ``inproc``, or a ``tcp://host:port`` listen URL
        (heterogeneous ``mw-worker --caps`` workers connect there).
    max_workers:
        Worker rank slots (default: CPU count).
    weights / quotas:
        Per-tenant overrides (``{name: weight}`` / ``{name:
        max_inflight}``) of the specs' ``weight`` / ``max_inflight``
        scheduling fields.
    worker_caps:
        ``{rank: [capability, …]}`` for the same-host transports (TCP
        workers declare their own caps in the hello handshake).
    batch_size:
        Jobs claimed per top-up, per tenant — the lease granularity.
    lease / lease_ttl / runner_id / mw_max_retries / telemetry:
        As in :class:`~repro.campaign.runner.CampaignRunner`.
    """

    def __init__(
        self,
        directories: Sequence[Any],
        transport: str = "process",
        max_workers: Optional[int] = None,
        weights: Optional[Mapping[str, float]] = None,
        quotas: Optional[Mapping[str, int]] = None,
        worker_caps: Optional[Mapping[int, Sequence[str]]] = None,
        batch_size: int = 8,
        lease: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        mw_max_retries: int = 2,
        runner_id: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not directories:
            raise ValueError("campaign serve needs at least one directory")
        validate_mw_transport(transport)
        self.transport = transport
        self.max_workers = max_workers
        self.worker_caps = dict(worker_caps or {})
        self.batch_size = max(1, int(batch_size))
        self.lease = bool(lease)
        self.lease_ttl = float(lease_ttl)
        self.mw_max_retries = int(mw_max_retries)
        self.runner_id = runner_id or default_runner_id()
        if telemetry is None:
            telemetry = Telemetry.from_env(
                Path(directories[0]), runner=self.runner_id
            )
        self.telemetry = telemetry
        weights = dict(weights or {})
        quotas = dict(quotas or {})
        self.tenants: Dict[str, _Tenant] = {}
        for directory in directories:
            campaign = Campaign(directory)
            name = campaign.spec.name
            if name in self.tenants:
                raise ValueError(
                    f"duplicate tenant name {name!r} (in {directory}); "
                    f"spec names must be unique under one serve master"
                )
            runner = CampaignRunner(
                campaign.spec, campaign.store,
                lease=self.lease, lease_ttl=self.lease_ttl,
                runner_id=self.runner_id, telemetry=self.telemetry,
            )
            self.tenants[name] = _Tenant(
                campaign, runner,
                weight=float(weights.get(name, campaign.spec.weight)),
                max_inflight=quotas.get(name, campaign.spec.max_inflight),
            )
        unknown = (set(weights) | set(quotas)) - set(self.tenants)
        if unknown:
            raise ValueError(
                f"--weight/--quota name(s) {sorted(unknown)} match no tenant; "
                f"tenants: {sorted(self.tenants)}"
            )
        self.scheduler = CampaignScheduler(telemetry=self.telemetry)
        for tenant in self.tenants.values():
            self.scheduler.add_tenant(tenant.name, weight=tenant.weight,
                                      max_inflight=tenant.max_inflight)
        self.driver = None  # built in serve()
        self._inflight: Dict[int, Tuple[_Tenant, Job, Any]] = {}

    # -- serve loop --------------------------------------------------------

    def _build_driver(self):
        """Construct the shared MW driver for the fleet."""
        import os as _os

        from repro.campaign.execution import mw_job_executor
        from repro.mw.driver import MWDriver

        n_workers = self.max_workers or _os.cpu_count() or 2
        options: Dict[str, Any] = {}
        if self.worker_caps and self.transport in ("inproc", "threaded", "process"):
            options["worker_caps"] = self.worker_caps
        return MWDriver(
            mw_job_executor,
            n_workers=max(1, int(n_workers)),
            backend=self.transport,
            max_retries=self.mw_max_retries,
            seed=0,
            transport_options=options or None,
            telemetry=self.telemetry,
        )

    def _load_backlogs(self) -> None:
        """Expand each tenant's grid and drop what its store already holds."""
        for tenant in self.tenants.values():
            jobs = tenant.campaign.jobs()
            done = tenant.campaign.store.completed_ids()
            tenant.n_total = len(jobs)
            pending = [job for job in jobs if job.job_id not in done]
            tenant.n_skipped = tenant.n_total - len(pending)
            tenant.backlog.extend(pending)

    def _top_up(self, tenant: _Tenant) -> None:
        """Claim another batch into the tenant's queue when it runs low."""
        while tenant.backlog and self.scheduler.depth(tenant.name) < self.batch_size:
            batch = [
                tenant.backlog.popleft()
                for _ in range(min(self.batch_size, len(tenant.backlog)))
            ]
            if self.lease:
                batch = tenant.runner._claim_batch(batch, tenant.counts)
            if not batch:
                continue
            tenant.add_claimed([job.job_id for job in batch])
            for job in batch:
                self.scheduler.enqueue(tenant.name, job, priority=job.priority)

    def _idle_caps(self) -> List[frozenset]:
        """Capability vectors of the driver's currently idle live ranks."""
        driver = self.driver
        return [
            driver.worker_caps(rank)
            for rank in driver._idle
            if driver._alive.get(rank, False)
        ]

    def _fill_slots(self) -> int:
        """Offer free worker slots to the scheduler; submit what it grants."""
        submitted = 0
        avail = self._idle_caps()
        # On a static fleet a job no *live* worker can ever satisfy must
        # not queue forever: pass it through to the driver, whose
        # unmatchable-constraint check fails it with a clear error.  On a
        # dynamic (tcp) fleet it waits — a capable worker may yet join.
        static = not self.driver.transport.dynamic
        live_caps = [
            self.driver.worker_caps(rank)
            for rank, alive in self.driver._alive.items() if alive
        ] if static else []

        def can_place(job: Job) -> bool:
            need = frozenset(job.constraints)
            if any(need <= caps for caps in avail):
                return True
            return static and not any(need <= caps for caps in live_caps)

        while True:
            selected = self.scheduler.select(can_place)
            if selected is None:
                break
            name, job = selected
            # Mirror the driver's choice (fewest-caps eligible worker) so
            # the local availability bookkeeping tracks what dispatch will
            # actually consume.
            need = frozenset(job.constraints)
            matching = [caps for caps in avail if need <= caps]
            if matching:
                avail.remove(min(matching, key=len))
            task = self.driver.submit(job.to_dict(), constraints=job.constraints)
            self._inflight[task.task_id] = (self.tenants[name], job, task)
            submitted += 1
        return submitted

    def _harvest(self) -> int:
        """Record finished tasks to their tenants' stores; free their slots."""
        finished = [
            (task_id, tenant, job, task)
            for task_id, (tenant, job, task) in self._inflight.items()
            if task.done or task.failed
        ]
        per_tenant: Dict[str, List[dict]] = {}
        for task_id, tenant, job, task in finished:
            del self._inflight[task_id]
            record = (
                task.result if task.done
                else CampaignRunner._mw_failure_record(job, task)
            )
            per_tenant.setdefault(tenant.name, []).append(record)
            self.scheduler.mark_complete(tenant.name)
        for name, records in per_tenant.items():
            tenant = self.tenants[name]
            tenant.runner._record_batch(records, tenant.counts)
            tenant.drop_claimed([r["job_id"] for r in records])
        return len(finished)

    def _drained(self) -> bool:
        """Whether every tenant's backlog, queue, and inflight set is empty."""
        return (
            not self._inflight
            and self.scheduler.queued() == 0
            and all(not t.backlog for t in self.tenants.values())
        )

    def serve(self, poll_interval: float = 0.05,
              timeout: Optional[float] = None,
              on_start: Optional[Callable[[Any], None]] = None,
              ) -> Dict[str, CampaignReport]:
        """Drain every tenant; returns ``{tenant: CampaignReport}``.

        Runs until all tenants' pending jobs are recorded (or shed /
        leased to peers), pumping the driver between top-ups so tenants'
        jobs interleave without barriers.  ``timeout`` bounds the whole
        serve in real seconds (``TimeoutError``) — on a TCP transport the
        master otherwise waits indefinitely for capable workers.
        ``on_start`` is called with the driver once the transport is live
        (the CLI prints the bound tcp address from it).  On any exit
        (including interrupt) heartbeats stop and unfulfilled claims are
        released, so peers can pick the jobs up immediately.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        t0 = time.monotonic()
        self._load_backlogs()
        saved_run_env = os.environ.get(RUN_ID_ENV)
        if self.telemetry.enabled:
            # Executing processes stamp this serve's run id into their
            # audit lines and store records, same as a single-runner run.
            os.environ[RUN_ID_ENV] = self.telemetry.run_id
            self.telemetry.event(
                "run_start",
                campaign=",".join(self.tenants),
                backend=self.transport,
                n_total=sum(t.n_total for t in self.tenants.values()),
                n_skipped=sum(t.n_skipped for t in self.tenants.values()),
            )
        self.driver = self._build_driver()
        if on_start is not None:
            on_start(self.driver)
        if self.lease:
            for tenant in self.tenants.values():
                tenant.heartbeat = _ServeLeaseHeartbeat(
                    tenant.campaign.store, tenant.claimed_ids, self.runner_id,
                    self.lease_ttl, telemetry=self.telemetry,
                )
        interrupted = False
        try:
            with self.telemetry.span(
                "serve", tenants=len(self.tenants), transport=self.transport
            ):
                while not self._drained():
                    for tenant in self.tenants.values():
                        self._top_up(tenant)
                    self._fill_slots()
                    self.driver.pump(poll_interval)
                    self._harvest()
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"serve timed out with {len(self._inflight)} "
                            f"task(s) inflight and "
                            f"{self.scheduler.queued()} queued"
                        )
                if self.telemetry.enabled:
                    self.telemetry.event("workers", workers=self.driver.utilization())
        except BaseException:
            interrupted = True
            raise
        finally:
            for tenant in self.tenants.values():
                if tenant.heartbeat is not None:
                    tenant.heartbeat.stop()
                    tenant.heartbeat = None
                leftover = tenant.claimed_ids()
                if leftover:
                    tenant.runner._release_quietly(leftover)
                    tenant.drop_claimed(leftover)
            self.driver.shutdown()
            if self.telemetry.enabled:
                if saved_run_env is None:
                    os.environ.pop(RUN_ID_ENV, None)
                else:
                    os.environ[RUN_ID_ENV] = saved_run_env
                self.telemetry.event(
                    "run_end",
                    done=sum(t.counts["done"] for t in self.tenants.values()),
                    failed=sum(t.counts["failed"] for t in self.tenants.values()),
                    shed=sum(t.counts["shed"] for t in self.tenants.values()),
                    leased=sum(t.counts["leased"] for t in self.tenants.values()),
                    elapsed_s=time.monotonic() - t0,
                    interrupted=interrupted,
                )
                self.telemetry.write_metrics()
        return {
            name: tenant.report(interrupted=interrupted)
            for name, tenant in self.tenants.items()
        }

    def status(self) -> List[dict]:
        """Per-tenant scheduling + store status rows (the ``--status`` view)."""
        sched = {row["tenant"]: row for row in self.scheduler.stats()}
        rows = []
        for name, tenant in self.tenants.items():
            row = tenant.campaign.status()
            row.pop("cells", None)
            row.update(
                weight=tenant.weight,
                max_inflight=tenant.max_inflight,
                priority=tenant.campaign.spec.priority,
                constraints=list(tenant.campaign.spec.constraints),
            )
            row.update({
                k: v for k, v in sched.get(name, {}).items()
                if k in ("high", "low", "inflight", "dispatched")
            })
            rows.append(row)
        return rows


def serve_status(directories: Sequence[Any]) -> List[dict]:
    """One-shot ``campaign serve --status`` rows, without starting a master.

    Reads each directory's spec and store and reports the same columns a
    running master would: job progress plus the scheduling policy fields
    (weight, priority, constraints, inflight cap).
    """
    rows = []
    for directory in directories:
        campaign = Campaign(directory)
        row = campaign.status()
        row.pop("cells", None)
        row.update(
            weight=float(campaign.spec.weight),
            max_inflight=campaign.spec.max_inflight,
            priority=campaign.spec.priority,
            constraints=list(campaign.spec.constraints),
        )
        rows.append(row)
    return rows
