"""A transactional SQLite result-store engine.

The JSONL engines coordinate runners through filesystem primitives —
``O_APPEND`` whole-line writes under an exclusive ``flock`` — which is
exactly what the paper's MW architecture *avoids*: results are supposed
to flow through a resource manager, not a shared POSIX file.  This
module is the first non-filesystem engine behind the
:class:`~repro.campaign.backends.base.StoreBackend` seam:
``results.sqlite`` inside the campaign directory, coordinated by SQLite
transactions instead of file locks.

Design points:

* **WAL journal mode** — readers (``status``, ``watch``, aggregation)
  never block writers and vice versa, which is the polling pattern of a
  watched campaign.
* **One transaction per batch** — a batch claim is a single
  ``BEGIN IMMEDIATE`` transaction: the write lock is taken *up front*,
  the free subset is computed inside it, and the lease rows land before
  commit, so two runners claiming overlapping batches partition them —
  the same guarantee the JSONL engines get from ``flock`` plus an
  in-lock re-scan.  Renewals and releases are transactional the same
  way.
* **Last-record-wins by upsert** — ``job_id`` is unique in the
  ``results`` table, so a re-recorded job *replaces* its row in place
  (keeping its original insertion position, which is what keeps
  ``records()`` in first-appearance order, same as JSONL).  There is no
  duplicate accumulation for :meth:`SQLiteStoreBackend.compact` to drop;
  compaction prunes stale leases, checkpoints the WAL, and vacuums.
* **Indexed by job id and cell** — the unique ``job_id`` index serves
  claims and dedup; a secondary index on the job's aggregation cell
  serves per-cell queries on multi-million-row stores.
* **Incremental reads** — every insert/update stamps a monotonically
  increasing ``mut`` counter; :meth:`SQLiteStoreBackend.records` folds
  only rows stamped after its previous read into an id-keyed cache, so
  polling a big store costs the delta, not the table.
* **Thread and fork hygiene** — connections are per-thread and
  per-process (a forked worker or a heartbeat thread silently gets its
  own), so the runner's renewal thread and a ``parallel_map`` fork can
  never share a connection.

Record payloads are stored as canonical (sorted-key) JSON text — the
byte-for-byte line format of the JSONL engines — which is what makes
:func:`~repro.campaign.sharding.migrate_store` round-trips lossless down
to the compacted bytes.
"""

from __future__ import annotations

import copy
import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.campaign.backends.base import (
    STATUS_DONE,
    STATUS_FAILED,
    CompactionStats,
    Lease,
    StoreBackend,
)
from repro.campaign.spec import CELL_FIELDS

#: The database file inside a campaign directory.
DB_FILENAME = "results.sqlite"

#: Seconds a connection waits on a locked database before giving up.
#: Generous: a claim transaction is sub-millisecond, so a long wait only
#: ever means heavy runner contention, where waiting is the right call.
DEFAULT_BUSY_TIMEOUT = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id  TEXT NOT NULL UNIQUE,
    status  TEXT NOT NULL,
    cell    TEXT,
    mut     INTEGER NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_status ON results(status);
CREATE INDEX IF NOT EXISTS idx_results_cell ON results(cell);
CREATE INDEX IF NOT EXISTS idx_results_mut ON results(mut);
CREATE TABLE IF NOT EXISTS leases (
    job_id   TEXT PRIMARY KEY,
    runner   TEXT NOT NULL,
    deadline REAL NOT NULL
);
"""


def _cell_key(record: dict) -> Optional[str]:
    """The job's aggregation-cell key as canonical JSON, if derivable.

    The same tuple as :attr:`repro.campaign.spec.Job.cell` (shared
    :data:`~repro.campaign.spec.CELL_FIELDS` definition), pulled from
    the record's embedded job dict.  Synthetic records without one
    (tests, foreign stores) index as NULL.
    """
    job = record.get("job")
    if not isinstance(job, dict):
        return None
    try:
        cell = [job[name] for name in CELL_FIELDS]
    except KeyError:
        return None
    return json.dumps(cell, sort_keys=True)


class SQLiteStoreBackend(StoreBackend):
    """The :class:`~repro.campaign.backends.base.StoreBackend` contract
    over one SQLite database.

    Parameters
    ----------
    directory:
        Campaign directory; the database lives at
        ``<directory>/results.sqlite`` (created as needed, WAL mode).
        The directory's ``store-manifest.json`` must either be absent
        (it is written) or already name the ``sqlite`` engine — opening
        a JSONL-sharded directory as SQLite is a hard error, because the
        two representations cannot coexist (use ``campaign
        migrate-store`` to convert).
    busy_timeout:
        Seconds a statement waits on a locked database.
    """

    engine = "sqlite"
    metrics_engine = "sqlite"

    def __init__(self, directory, busy_timeout: float = DEFAULT_BUSY_TIMEOUT) -> None:
        # Imported here, not at module top: sharding imports this module
        # via the backends package, so the manifest helpers must not be
        # imported until both modules exist.
        from repro.campaign.sharding import ensure_manifest

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        ensure_manifest(self.directory, engine=self.engine)
        self._db_path = self.directory / DB_FILENAME
        self._busy_timeout = float(busy_timeout)
        self._local = threading.local()
        # Incremental-read cache: id-keyed records in first-appearance
        # order plus the highest mutation stamp folded so far.
        self._by_id: Dict[str, dict] = {}
        self._mut = 0
        self._cache_lock = threading.Lock()
        # Every connection this process has opened (worker threads, the
        # lease heartbeat), keyed to the pid that opened it so close()
        # never touches a forked parent's handles through inherited state.
        self._conns_lock = threading.Lock()
        self._conns: Dict[sqlite3.Connection, int] = {}
        # executescript commits as it goes; IF NOT EXISTS makes concurrent
        # creators converge without an explicit transaction.
        self._conn().executescript(_SCHEMA)

    # -- connection management --------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """This thread's connection, reopened after a fork.

        SQLite connections must not be shared across threads or carried
        across ``fork()``; keying on (thread, pid) means the lease
        heartbeat thread and any forked pool worker transparently get
        their own.
        """
        conn = getattr(self._local, "conn", None)
        if conn is None or self._local.pid != os.getpid():
            conn = sqlite3.connect(
                self._db_path,
                timeout=self._busy_timeout,
                isolation_level=None,  # autocommit; we issue BEGIN explicitly
                # Usage stays strictly per-thread (thread-local keying);
                # relaxing the check only lets close() reach connections
                # other threads opened.
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
            self._local.pid = os.getpid()
            with self._conns_lock:
                self._conns[conn] = os.getpid()
        return conn

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction: the write lock is taken up
        front, so every read inside sees (and keeps seeing) the state the
        writes will land on — the claim path's correctness hinge."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        """Close every connection this process opened, whatever the thread.

        Worker and heartbeat threads each open their own connection
        through :meth:`_conn`; closing only the calling thread's would
        leak the rest (and their WAL read marks) until process exit.
        Callers must quiesce those threads first — the runner joins its
        heartbeat before teardown — since a closed connection raises on
        use.  Connections a forked parent opened are skipped (the child
        inherits the tracking dict, not usable handles).
        """
        with self._conns_lock:
            mine = [c for c, pid in self._conns.items() if pid == os.getpid()]
            for conn in mine:
                del self._conns[conn]
        for conn in mine:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already-closed race
                pass
        self._local.conn = None

    @property
    def path(self) -> Path:
        """The database file (display / identification)."""
        return self._db_path

    # -- writing -----------------------------------------------------------

    @staticmethod
    def _upsert(conn: sqlite3.Connection, record: dict) -> None:
        """Insert-or-replace one record row and supersede its lease."""
        payload = json.dumps(record, sort_keys=True)
        conn.execute(
            """
            INSERT INTO results (job_id, status, cell, mut, payload)
            VALUES (?, ?, ?, (SELECT IFNULL(MAX(mut), 0) + 1 FROM results), ?)
            ON CONFLICT (job_id) DO UPDATE SET
                status  = excluded.status,
                cell    = excluded.cell,
                mut     = excluded.mut,
                payload = excluded.payload
            """,
            (record["job_id"], record["status"], _cell_key(record), payload),
        )
        conn.execute("DELETE FROM leases WHERE job_id = ?", (record["job_id"],))

    def record(self, record: dict) -> None:
        """Upsert one job record; the write supersedes any lease for its job.

        The payload is stored as canonical sorted-key JSON — byte-equal
        to the JSONL engines' line format, so store migrations round-trip
        losslessly.  A replaced row keeps its original ``seq`` (insertion
        position) and takes a fresh ``mut`` stamp so incremental readers
        pick the change up.
        """
        if "job_id" not in record or "status" not in record:
            raise ValueError("record needs 'job_id' and 'status' fields")
        with self._timed("append"), self._txn() as conn:
            self._upsert(conn, record)

    def record_many(self, records: Sequence[dict]) -> None:
        """Upsert a batch of records in one ``BEGIN IMMEDIATE`` transaction.

        One commit for the whole batch instead of one per record — the
        append half of the one-transaction-per-batch discipline (claims
        are the other half), and the reason batch appends here keep pace
        with the JSONL engines' single locked write.
        """
        records = list(records)
        for rec in records:
            if "job_id" not in rec or "status" not in rec:
                raise ValueError("record needs 'job_id' and 'status' fields")
        if not records:
            return
        with self._timed("append"), self._txn() as conn:
            for rec in records:
                self._upsert(conn, rec)

    # -- leases ------------------------------------------------------------

    def claim(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Claim the free subset of ``job_ids`` in one immediate transaction.

        See :meth:`StoreBackend.claim` for the semantics.  The whole
        batch — grantability checks and lease upserts — happens inside a
        single ``BEGIN IMMEDIATE`` transaction, so concurrent claimants
        of overlapping batches partition them.
        """
        now = time.time() if now is None else float(now)
        deadline = now + float(ttl)
        granted: List[str] = []
        with self._timed("claim"), self._txn() as conn:
            for jid in job_ids:
                row = conn.execute(
                    "SELECT status FROM results WHERE job_id = ?", (jid,)
                ).fetchone()
                if row is not None and row[0] == STATUS_DONE:
                    continue  # completed jobs are never grantable
                lease = conn.execute(
                    "SELECT runner, deadline FROM leases WHERE job_id = ?", (jid,)
                ).fetchone()
                if lease is not None and lease[0] != runner and lease[1] > now:
                    continue  # a live claim blocks everyone but its holder
                conn.execute(
                    "INSERT OR REPLACE INTO leases (job_id, runner, deadline) "
                    "VALUES (?, ?, ?)",
                    (jid, runner, deadline),
                )
                granted.append(jid)
        return granted

    def renew(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Extend still-held leases; see :meth:`StoreBackend.renew`.

        Ownership is checked by the ``UPDATE``'s ``WHERE`` clause inside
        the transaction: a lease a peer reclaimed (its ``runner`` column
        changed) or a result fulfilled (its row is gone — :meth:`record`
        deletes it) simply matches nothing.
        """
        now = time.time() if now is None else float(now)
        deadline = now + float(ttl)
        held: List[str] = []
        if not job_ids:
            return held
        with self._txn() as conn:
            for jid in job_ids:
                cur = conn.execute(
                    "UPDATE leases SET deadline = ? "
                    "WHERE job_id = ? AND runner = ?",
                    (deadline, jid, runner),
                )
                if cur.rowcount:
                    held.append(jid)
        return held

    def release(self, job_ids: Sequence[str], runner: str) -> None:
        """Drop claims on ``job_ids`` immediately (graceful-interrupt path)."""
        if not job_ids:
            return
        with self._txn() as conn:
            conn.executemany(
                "DELETE FROM leases WHERE job_id = ?",
                [(jid,) for jid in job_ids],
            )

    def leases(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Live (claimed, unexpired) leases by job id.

        Expired rows are treated as absent (they are pruned lazily, by
        the next claim on the job or by :meth:`compact`).
        """
        now = time.time() if now is None else float(now)
        rows = self._conn().execute(
            "SELECT job_id, runner, deadline FROM leases WHERE deadline > ?",
            (now,),
        ).fetchall()
        return {jid: Lease(jid, runner, deadline) for jid, runner, deadline in rows}

    # -- reading -----------------------------------------------------------

    def records(self) -> List[dict]:
        """All result records in first-appearance order, read incrementally.

        Only rows whose mutation stamp is newer than the previous read
        are fetched and folded into the id-keyed cache; a replaced row
        keeps its original position (dict update preserves insertion
        order), matching the JSONL engines' ordering exactly.  Returned
        records are deep copies — mutating them cannot corrupt the cache.
        """
        with self._cache_lock:
            rows = self._conn().execute(
                "SELECT job_id, mut, payload FROM results WHERE mut > ? "
                "ORDER BY seq",
                (self._mut,),
            ).fetchall()
            for jid, mut, payload in rows:
                self._by_id[jid] = json.loads(payload)
                if mut > self._mut:
                    self._mut = mut
            return [copy.deepcopy(r) for r in self._by_id.values()]

    def records_since(self, since: int) -> "Tuple[int, List[dict]]":
        """Rows mutated after stamp ``since``, plus the new high stamp.

        The raw half of the mutation-stamp protocol :meth:`records` is
        built on, exposed so *remote* readers (the ``store://`` server)
        can ship a caller only the delta: rows whose ``mut`` exceeds
        ``since``, in ``seq`` (first-appearance) order, and the highest
        stamp seen — the caller folds them into its own id-keyed cache
        and passes the stamp back next time.  ``since=0`` is a full read.
        """
        stamp = int(since)
        out: List[dict] = []
        rows = self._conn().execute(
            "SELECT mut, payload FROM results WHERE mut > ? ORDER BY seq",
            (stamp,),
        ).fetchall()
        for mut, payload in rows:
            out.append(json.loads(payload))
            if mut > stamp:
                stamp = mut
        return stamp, out

    def completed_ids(self) -> Set[str]:
        """Ids of successfully finished jobs, straight off the status index."""
        rows = self._conn().execute(
            "SELECT job_id FROM results WHERE status = ?", (STATUS_DONE,)
        ).fetchall()
        return {jid for (jid,) in rows}

    def counts(self) -> Dict[str, int]:
        """Result tallies via ``GROUP BY status`` — no row materialization."""
        rows = self._conn().execute(
            "SELECT status, COUNT(*) FROM results GROUP BY status"
        ).fetchall()
        by_status = dict(rows)
        return {
            "total": sum(by_status.values()),
            "done": by_status.get(STATUS_DONE, 0),
            "failed": by_status.get(STATUS_FAILED, 0),
        }

    def counts_by_cell(self) -> Dict[tuple, Dict[str, int]]:
        """Per-cell ``{"total", "done", "failed"}`` tallies off the cell index.

        The aggregate the dashboards poll, answered by ``GROUP BY cell``
        without materializing a single record row — on multi-million-row
        stores this is the reason the ``cell`` column is indexed.
        Records whose payload carried no job dict (synthetic tests,
        foreign stores) are excluded; cell keys are the
        :attr:`~repro.campaign.spec.Job.cell` tuples.
        """
        rows = self._conn().execute(
            """
            SELECT cell,
                   COUNT(*),
                   SUM(status = ?),
                   SUM(status = ?)
            FROM results WHERE cell IS NOT NULL GROUP BY cell
            """,
            (STATUS_DONE, STATUS_FAILED),
        ).fetchall()
        return {
            tuple(json.loads(cell)): {"total": total, "done": done, "failed": failed}
            for cell, total, done, failed in rows
        }

    # -- maintenance -------------------------------------------------------

    def _disk_bytes(self) -> int:
        """Current database footprint (main file + WAL)."""
        total = 0
        for suffix in ("", "-wal"):
            try:
                total += os.path.getsize(f"{self._db_path}{suffix}")
            except OSError:
                pass
        return total

    def compact(self, now: Optional[float] = None) -> CompactionStats:
        """Prune stale leases, checkpoint the WAL, and vacuum.

        Upserts dedup continuously, so unlike the JSONL engines there are
        never duplicate result records to drop —
        ``n_records_before == n_records_after`` always.  What compaction
        reclaims here is expired lease rows, the accumulated WAL, and
        free pages; like every engine's compact it changes no observable
        read.
        """
        now = time.time() if now is None else float(now)
        bytes_before = self._disk_bytes()
        with self._timed("compact"):
            with self._txn() as conn:
                conn.execute("DELETE FROM leases WHERE deadline <= ?", (now,))
                (n_records,) = conn.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()
            conn = self._conn()
            conn.execute("VACUUM")
            # VACUUM itself writes through the WAL; truncate it afterwards so
            # the measured footprint is the real steady-state database size.
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return CompactionStats(
            n_records, n_records, bytes_before, self._disk_bytes()
        )

    # -- misc --------------------------------------------------------------

    def __len__(self) -> int:
        (n,) = self._conn().execute("SELECT COUNT(*) FROM results").fetchone()
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQLiteStoreBackend {self._db_path} n={len(self)}>"
