"""The store contract every campaign result-store engine implements.

:class:`StoreBackend` is the seam between the campaign layer and its
durable substrate.  :class:`~repro.campaign.runner.CampaignRunner`,
:mod:`~repro.campaign.progress`, :mod:`~repro.campaign.aggregate`, and
the CLI depend on exactly this surface — append a result record, claim /
renew / release leases, read the deduplicated records back (engines are
expected to make repeated reads cheap, e.g. incrementally), compact, and
count — and on nothing else, so an engine is free to choose any storage
representation that preserves the semantics spelled out on each method.

Three engines ship with the package:

* :class:`~repro.campaign.store.ResultStore` — the original append-only
  JSONL file (``results.jsonl``) with ``flock``-guarded appends,
  truncated-tail heal, and last-record-wins dedup; also the in-memory
  store when constructed without a path.
* :class:`~repro.campaign.sharding.ShardedResultStore` — the identical
  JSONL format spread over ``results-<k>.jsonl`` shards routed by a
  stable job-id hash.
* :class:`~repro.campaign.backends.sqlite.SQLiteStoreBackend` — a
  transactional SQLite database (WAL mode) for campaigns that outgrow
  filesystem-level coordination.

This module also owns the small value types the contract speaks in
(:class:`Lease`, :class:`CompactionStats`) and the record/lease status
constants, so concrete engines depend only on this module, never on each
other.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

#: Result-record statuses (durable job outcomes).
STATUS_DONE = "done"
STATUS_FAILED = "failed"
#: Lease-line statuses (claim bookkeeping, not job outcomes).
STATUS_CLAIMED = "claimed"
STATUS_RELEASED = "released"
LEASE_STATUSES = (STATUS_CLAIMED, STATUS_RELEASED)


@dataclass(frozen=True)
class Lease:
    """One live claim: ``runner`` owns ``job_id`` until ``deadline``.

    ``deadline`` is wall-clock epoch seconds; a lease whose deadline has
    passed is *expired* and its job is requeueable by any runner.
    """

    job_id: str
    runner: str
    deadline: float

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline has passed (``now`` defaults to wall clock)."""
        return (time.time() if now is None else now) >= self.deadline


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`StoreBackend.compact` call did.

    Record counts cover *result* records only (lease lines are pure
    bookkeeping — stale ones are silently dropped, live ones preserved);
    the byte counts cover the whole on-disk representation.
    """

    n_records_before: int   # raw stored result records, duplicates included
    n_records_after: int    # one per job id
    bytes_before: int
    bytes_after: int

    @property
    def n_dropped(self) -> int:
        """Duplicate / superseded result records removed by the rewrite."""
        return self.n_records_before - self.n_records_after

    def __str__(self) -> str:
        return (
            f"{self.n_records_before} -> {self.n_records_after} records "
            f"({self.n_dropped} dropped), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )

    def __add__(self, other: "CompactionStats") -> "CompactionStats":
        """Aggregate per-shard stats (used by the sharded store)."""
        return CompactionStats(
            self.n_records_before + other.n_records_before,
            self.n_records_after + other.n_records_after,
            self.bytes_before + other.bytes_before,
            self.bytes_after + other.bytes_after,
        )


class StoreBackend(abc.ABC):
    """Abstract result store: what the campaign layer requires of an engine.

    The semantic contract, shared by every implementation and exercised
    engine-by-engine by the test suite's parametrized ``store_backend``
    fixture:

    * **Append / dedup** — :meth:`record` durably appends one job
      outcome; when a job id recurs, the *latest* record wins (a re-run
      may correct an earlier failure without rewriting history).
    * **Leases** — :meth:`claim` atomically grants the free subset of a
      batch (no completed job, no other runner's live lease) under one
      engine-level critical section, so concurrent claimants *partition*
      a batch; :meth:`renew` extends only leases the runner still holds;
      :meth:`release` frees claims immediately; an unrenewed lease
      expires at its wall-clock deadline and the job becomes requeueable.
      A result record supersedes the claim it fulfils.
    * **Reads** — :meth:`records` returns the deduplicated result
      records in first-appearance order, lease bookkeeping excluded;
      repeated reads must be cheap enough to poll (the JSONL engines
      read incrementally, SQLite folds rows changed since the last
      read).  Mutating a returned record must not corrupt the store.
    * **Compaction** — :meth:`compact` drops duplicate records and stale
      lease state without changing any observable read, atomically with
      respect to concurrent writers.

    Engines also expose :attr:`engine` (the manifest identifier) and a
    ``path`` attribute or property naming their on-disk location.

    Every engine additionally reports latency through the shared
    :attr:`telemetry` context: implementations wrap their append /
    claim / compact critical sections with :meth:`_timed`, which feeds
    the per-engine ``repro_store_op_seconds`` histogram.  The default
    telemetry resolves from ``$REPRO_TELEMETRY`` and is a no-op when
    unset; the campaign runner assigns its own context so store metrics
    land in the same registry (and ``telemetry.jsonl``) as runner spans.
    """

    #: Engine identifier recorded in ``store-manifest.json`` and shown by
    #: ``campaign status``; concrete engines override as appropriate.
    engine: str = "jsonl"

    #: Label the engine's latency series carries in the metrics registry;
    #: distinct from :attr:`engine` where several engines share a wire
    #: format (the sharded store reports as ``"sharded"``, not ``"jsonl"``).
    metrics_engine: str = "jsonl"

    @property
    def telemetry(self):
        """The telemetry context store operations report through.

        Lazily resolved from ``$REPRO_TELEMETRY`` on first use (the
        shared no-op instance when unset); assignable, so a runner can
        route store metrics into its own registry.
        """
        got = getattr(self, "_telemetry", None)
        if got is None:
            from repro.telemetry import Telemetry

            got = Telemetry.from_env()
            self._telemetry = got
        return got

    @telemetry.setter
    def telemetry(self, value) -> None:
        """Route this store's metrics through ``value``."""
        self._telemetry = value

    def _timed(self, op: str):
        """Timer context observing ``repro_store_op_seconds{op=,engine=}``."""
        return self.telemetry.timer(
            "repro_store_op_seconds",
            "Latency of store backend operations.",
            op=op,
            engine=self.metrics_engine,
        )

    # -- writing -----------------------------------------------------------

    @abc.abstractmethod
    def record(self, record: dict) -> None:
        """Durably append one job record (must carry ``job_id`` and ``status``)."""

    def record_many(self, records: Sequence[dict]) -> None:
        """Durably append a batch of job records.

        Semantically ``record`` in a loop; engines override to batch the
        whole append into one critical section (one locked write for
        JSONL, one transaction for SQLite) — the campaign runner records
        per batch, so this is the append hot path.
        """
        for rec in records:
            self.record(rec)

    # -- leases ------------------------------------------------------------

    @abc.abstractmethod
    def claim(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Atomically claim the free subset of ``job_ids`` for ``runner``.

        Granted ids come back in input order; a job already completed or
        validly leased to another runner is silently skipped, and an
        expired lease is requeued to the new claimant.  ``now`` (epoch
        seconds) is injectable for tests; the deadline is ``now + ttl``.
        """

    @abc.abstractmethod
    def renew(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Extend ``runner``'s still-held leases to ``now + ttl``.

        Returns the ids actually renewed; a lease that lapsed and was
        reclaimed by a peer (or fulfilled by a result) is not clobbered.
        """

    @abc.abstractmethod
    def release(self, job_ids: Sequence[str], runner: str) -> None:
        """Give up claims on ``job_ids`` without a result (graceful interrupt)."""

    @abc.abstractmethod
    def leases(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Live (claimed, unexpired) leases by job id."""

    # -- reading -----------------------------------------------------------

    @abc.abstractmethod
    def records(self) -> List[dict]:
        """All result records, deduplicated by job id (last record wins)."""

    def completed(self) -> List[dict]:
        """Records of jobs that finished successfully."""
        return [r for r in self.records() if r.get("status") == STATUS_DONE]

    def failed(self) -> List[dict]:
        """Records of jobs whose latest attempt failed (retried on re-run)."""
        return [r for r in self.records() if r.get("status") == STATUS_FAILED]

    def completed_ids(self) -> Set[str]:
        """Ids of jobs that finished successfully (the resume skip-set)."""
        return {r["job_id"] for r in self.completed()}

    def counts(self) -> Dict[str, int]:
        """Result-record tallies: ``{"total", "done", "failed"}``.

        ``total`` counts distinct job ids with any result record; engines
        with a cheaper path than a full read (SQLite) override this.
        """
        total = done = failed = 0
        for rec in self.records():
            total += 1
            status = rec.get("status")
            done += status == STATUS_DONE
            failed += status == STATUS_FAILED
        return {"total": total, "done": done, "failed": failed}

    # -- maintenance -------------------------------------------------------

    @abc.abstractmethod
    def compact(self, now: Optional[float] = None) -> CompactionStats:
        """Drop duplicate records and stale lease state; returns the stats."""

    def __len__(self) -> int:
        return len(self.records())
