"""A network result-store engine: ``store://host:port``.

Every other engine coordinates runners through a *shared filesystem*
(``flock`` on JSONL, a SQLite file) — which is exactly the coupling the
paper's MW architecture removes: results flow through a long-lived
manager process, not a mount.  This module completes that picture for
the store the way :mod:`repro.mw.tcp` completed it for task dispatch:

* :class:`StoreServer` wraps any local
  :class:`~repro.campaign.backends.base.StoreBackend` (``campaign
  store-serve`` defaults to the SQLite engine) behind a framed TCP
  listener built from the same machinery as the mw transport —
  length-prefixed frames (:func:`repro.mw.codec.encode_frame`), one
  reader thread per connection, keepalive + Nagle-off on every socket.
  Frame payloads are JSON, not the typed TLV codec: store records are
  JSON-serializable by construction (that is how every engine persists
  them), and the C JSON encoder keeps the wire overhead on a
  100-record batch to a fraction of what the Python TLV walker costs —
  which is what holds ``store://`` throughput within its 2x budget of
  the local engine it fronts.
* :class:`NetworkStoreBackend` is the client: a full ``StoreBackend``
  implementation that speaks request/response frames over one socket,
  registered as the ``store://host:port`` engine, so ``campaign run
  --store store://…`` and every CLI subcommand work unchanged with no
  shared filesystem between runner and store.

Wire-level design points:

* **One frame per batch.**  A batch claim, renew, release, or
  ``record_many`` is a single request frame and a single response frame
  — the store's one-critical-section-per-batch discipline extends to
  one round trip per batch, which is what keeps ``store://`` throughput
  within a small factor of the local engine it fronts.
* **Piggybacked renewal.**  A ``record_many`` frame carries the ids of
  the leases its runner still holds; the server renews them in the same
  request, so the result-append hot path doubles as a heartbeat and the
  renewal thread has one fewer round trip to race against.
* **Incremental reads.**  ``records`` requests carry the client's last
  mutation stamp; a stamp-capable backend
  (:meth:`~repro.campaign.backends.sqlite.SQLiteStoreBackend.records_since`)
  returns only newer rows, which the client folds into an id-keyed
  cache — polling a million-row store from ``campaign watch`` costs the
  delta, not the table.  Backends without stamps fall back to full
  reads, flagged so the client replaces instead of folds.
* **Reconnect with resume.**  A broken connection (server restart,
  transient partition) is not fatal: the client redials with the shared
  exponential-backoff helper (:func:`repro.mw.tcp.dial_with_backoff`),
  re-handshakes, *re-asserts the leases it held* via a claim (its own
  or expired leases re-grant; completed jobs are skipped), resets its
  read cache, and retries the failed request once.  Every request is
  idempotent — claims re-grant to their holder, appends upsert, renew
  and release are set operations — so the retry is safe even when the
  original frame was applied before the connection died.

Errors the server reports (e.g. a malformed record) are re-raised
client-side by kind — ``ValueError`` stays ``ValueError`` — while
transport failures surface as :class:`NetworkStoreError`, an ``OSError``
subclass, so every existing ``except OSError`` retry path (the lease
heartbeat, quiet release on interrupt) treats a dead store server like
a transient filesystem hiccup.
"""

from __future__ import annotations

import copy
import json
import socket
import threading
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.backends.base import (
    CompactionStats,
    Lease,
    StoreBackend,
)
from repro.mw.codec import (
    CodecError,
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_frame_length,
    encode_frame,
)
from repro.mw.tcp import (
    _disable_nagle,
    _enable_keepalive,
    dial_with_backoff,
    recv_exact,
)

#: The engine identifier ``store-manifest.json`` records for a campaign
#: directory whose results live behind a ``store://`` server.
ENGINE_STORE = "store"

#: URL scheme selecting the network engine in ``--store`` specs.
STORE_URL_PREFIX = "store://"

#: Protocol version carried in the hello handshake; a mismatch is
#: refused up front instead of failing on some later frame.
STORE_PROTOCOL_VERSION = 1


class NetworkStoreError(OSError):
    """A store request failed at the transport or protocol level.

    An ``OSError`` on purpose: the campaign layer already treats store
    ``OSError`` as "transient, retry or shrug" (heartbeat skips a beat,
    interrupt-path release is best-effort), and a briefly unreachable
    store server deserves exactly that handling.
    """


def is_store_url(spec: Any) -> bool:
    """Whether ``spec`` is a ``store://host:port`` engine spec."""
    return isinstance(spec, str) and spec.startswith(STORE_URL_PREFIX)


def parse_store_url(url: str) -> Tuple[str, int]:
    """Split ``store://host:port`` into ``(host, port)``.

    Port 0 is accepted (a server may listen ephemerally); clients
    reject it separately since they need a concrete peer.
    """
    if not is_store_url(url):
        raise ValueError(f"expected a store://host:port URL, got {url!r}")
    rest = url[len(STORE_URL_PREFIX):]
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected a store://host:port URL, got {url!r}")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"invalid port {port_s!r} in {url!r}") from None
    if not (0 <= port <= 65535):
        raise ValueError(f"port out of range in {url!r}")
    return host, port


def _parse_listen(spec: str) -> Tuple[str, int]:
    """Parse a server ``--listen`` spec: ``host:port`` or a store:// URL."""
    if is_store_url(spec):
        return parse_store_url(spec)
    return parse_store_url(STORE_URL_PREFIX + spec)


def _send_obj(sock: socket.socket, obj: dict) -> None:
    """Write one length-prefixed JSON request/response dict."""
    sock.sendall(encode_frame(json.dumps(obj, separators=(",", ":")).encode()))


def _recv_obj(sock: socket.socket, allow_eof: bool = False) -> Optional[dict]:
    """Read one length-prefixed JSON dict; ``None`` on clean EOF between frames."""
    header = recv_exact(sock, FRAME_HEADER_BYTES, allow_eof=allow_eof)
    if header is None:
        return None
    length = decode_frame_length(header, MAX_FRAME_BYTES)
    payload = recv_exact(sock, length)
    try:
        obj = json.loads(payload)
    except ValueError:
        raise CodecError("store frame payload is not valid JSON") from None
    if not isinstance(obj, dict):
        raise CodecError(f"expected a dict frame, got {type(obj).__name__}")
    return obj


# -- server ----------------------------------------------------------------


class StoreServer:
    """Serve one local :class:`StoreBackend` to ``store://`` clients.

    The listener pattern mirrors :class:`repro.mw.tcp.TcpMasterTransport`:
    a background accept loop polling with a short timeout (closing a
    listener does not wake ``accept`` on Linux), one daemon thread per
    connection, keepalive so vanished peers surface instead of leaking
    sockets.  Requests are dispatched under one server-side lock — every
    engine batches its critical sections anyway (``flock`` per append,
    ``BEGIN IMMEDIATE`` per claim), so serializing sub-millisecond
    operations costs little and buys every backend, stamped or not, a
    consistent view across concurrent clients.

    The server does not own the backend: callers (the CLI, the test
    fixture) close what they opened.

    Parameters
    ----------
    backend:
        Any local store engine to serve; ``campaign store-serve``
        defaults to SQLite.
    listen:
        ``host:port`` to bind (port 0 picks an ephemeral port; read the
        result from :attr:`address` after :meth:`start`).
    """

    def __init__(self, backend: StoreBackend, listen: str = "127.0.0.1:0") -> None:
        self._backend = backend
        self.host, self.port = _parse_listen(listen)
        self._listener: Optional[socket.socket] = None
        self._lock = threading.Lock()          # connection registry + closing flag
        self._dispatch_lock = threading.Lock()  # serializes backend access
        self._conns: Set[socket.socket] = set()
        self._threads: List[threading.Thread] = []
        self._closing = False
        self._closed = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the listener and start accepting clients in the background."""
        self._listener = socket.create_server(
            (self.host, self.port), backlog=16, reuse_port=False
        )
        self._listener.settimeout(0.25)
        self.port = self._listener.getsockname()[1]
        t = threading.Thread(
            target=self._accept_loop, daemon=True, name="store-serve-accept"
        )
        t.start()
        self._threads.append(t)

    @property
    def address(self) -> str:
        """The bound ``store://host:port`` (port resolved after ``start``)."""
        return f"{STORE_URL_PREFIX}{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until :meth:`close` is called (the CLI foreground mode).

        Polls rather than waiting untimed: an untimed ``Event.wait`` in
        the main thread parks in a futex where SIGINT is never serviced,
        and Ctrl-C is exactly how ``campaign store-serve`` stops.
        """
        if self._listener is None:
            self.start()
        while not self._closed.wait(0.5):
            pass

    def close(self) -> None:
        """Stop accepting, drop every connection, join threads; idempotent.

        The served backend is *not* closed — the opener owns it.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
            self._conns.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5.0)
        self._closed.set()

    # -- connection plumbing -----------------------------------------------

    def _accept_loop(self) -> None:
        """Accept clients until the listener closes."""
        while True:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                with self._lock:
                    if self._closing:
                        return
                continue
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closing:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    return
                self._conns.add(sock)
                t = threading.Thread(
                    target=self._serve_conn, args=(sock,),
                    daemon=True, name="store-serve-conn",
                )
                self._threads.append(t)
            t.start()

    def _serve_conn(self, sock: socket.socket) -> None:
        """Request/response loop for one client until EOF or error."""
        _enable_keepalive(sock)
        _disable_nagle(sock)
        greeted = False
        try:
            while True:
                request = _recv_obj(sock, allow_eof=True)
                if request is None:
                    break
                if not greeted:
                    if request.get("op") != "hello":
                        _send_obj(sock, {
                            "ok": False, "kind": "ProtocolError",
                            "error": "first frame must be a hello",
                        })
                        break
                    greeted = True
                _send_obj(sock, self._dispatch(request))
        except (OSError, CodecError):
            pass  # client gone or stream corrupt; nothing to answer
        finally:
            with self._lock:
                self._conns.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        """Apply one request to the backend; never raises.

        Application errors travel back as ``{"ok": False, "kind", "error"}``
        so the client can re-raise them by kind; only transport failures
        tear the connection down.
        """
        op = str(request.get("op"))
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "kind": "ProtocolError",
                    "error": f"unknown op {op!r}"}
        try:
            with self._dispatch_lock:
                result = handler(request)
        except Exception as exc:  # noqa: BLE001 - boundary: errors become frames
            return {"ok": False, "kind": type(exc).__name__, "error": str(exc)}
        result["ok"] = True
        return result

    def _op_hello(self, request: dict) -> dict:
        version = request.get("version")
        if version != STORE_PROTOCOL_VERSION:
            raise ValueError(
                f"unsupported store protocol version {version!r} "
                f"(server speaks {STORE_PROTOCOL_VERSION})"
            )
        return {"version": STORE_PROTOCOL_VERSION,
                "engine": self._backend.engine}

    def _op_claim(self, request: dict) -> dict:
        granted = self._backend.claim(
            request["job_ids"], request["runner"], request["ttl"],
            now=request.get("now"),
        )
        return {"granted": list(granted)}

    def _op_renew(self, request: dict) -> dict:
        held = self._backend.renew(
            request["job_ids"], request["runner"], request["ttl"],
            now=request.get("now"),
        )
        return {"held": list(held)}

    def _op_release(self, request: dict) -> dict:
        self._backend.release(request["job_ids"], request["runner"])
        return {}

    def _op_record_many(self, request: dict) -> dict:
        self._backend.record_many(request["records"])
        renewed: List[str] = []
        renew = request.get("renew")
        if renew:
            renewed = list(self._backend.renew(
                renew["job_ids"], renew["runner"], renew["ttl"]
            ))
        return {"renewed": renewed}

    def _op_records(self, request: dict) -> dict:
        since = int(request.get("since") or 0)
        records_since = getattr(self._backend, "records_since", None)
        if records_since is not None:
            stamp, rows = records_since(since)
            return {"full": False, "stamp": stamp, "records": rows}
        return {"full": True, "stamp": 0, "records": self._backend.records()}

    def _op_completed_ids(self, request: dict) -> dict:
        return {"ids": sorted(self._backend.completed_ids())}

    def _op_counts(self, request: dict) -> dict:
        return {"counts": dict(self._backend.counts())}

    def _op_leases(self, request: dict) -> dict:
        leases = self._backend.leases(now=request.get("now"))
        return {"leases": [
            [lease.job_id, lease.runner, lease.deadline]
            for lease in leases.values()
        ]}

    def _op_compact(self, request: dict) -> dict:
        stats = self._backend.compact(now=request.get("now"))
        return {"stats": [stats.n_records_before, stats.n_records_after,
                          stats.bytes_before, stats.bytes_after]}

    def _op_len(self, request: dict) -> dict:
        return {"n": len(self._backend)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StoreServer {self.address} backend={self._backend!r}>"


# -- client ----------------------------------------------------------------


class NetworkStoreBackend(StoreBackend):
    """The :class:`StoreBackend` contract over a ``store://`` connection.

    One socket, one request in flight at a time (an internal lock makes
    the instance safe to share between the runner thread and its lease
    heartbeat).  Separate instances — like the fresh stores each
    cooperating runner process opens — get their own connections.

    Parameters
    ----------
    url:
        The server's ``store://host:port``.
    connect_timeout:
        Seconds to keep dialing the *initial* connection (with
        exponential backoff), so runners may start before the server.
    reconnect_timeout:
        Seconds to keep redialing after an established connection
        breaks — the partition budget within which a server restart is
        invisible to the campaign (beyond one resumed handshake).
    """

    engine = ENGINE_STORE
    metrics_engine = "netstore"

    def __init__(
        self,
        url: str,
        connect_timeout: float = 30.0,
        reconnect_timeout: float = 30.0,
    ) -> None:
        self.host, self.port = parse_store_url(url)
        if self.port == 0:
            raise ValueError(f"a store client needs an explicit port, got {url!r}")
        self.url = url
        self.connect_timeout = float(connect_timeout)
        self.reconnect_timeout = float(reconnect_timeout)
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._ever_connected = False
        # Incremental-read cache, mirroring the SQLite engine's: id-keyed
        # records in first-appearance order + the last mutation stamp.
        self._by_id: Dict[str, dict] = {}
        self._stamp = 0
        # Leases this client believes it holds — the resume set re-asserted
        # after a reconnect, and the piggyback set renewed on every append.
        self._held: Dict[str, None] = {}
        self._held_runner: Optional[str] = None
        self._held_ttl: float = 0.0

    @property
    def path(self) -> str:
        """The server URL (display / identification; nothing is local)."""
        return self.url

    # -- connection management ---------------------------------------------

    def _connect(self) -> socket.socket:
        """Dial and handshake; on reconnect, resume held leases."""
        timeout = (self.reconnect_timeout if self._ever_connected
                   else self.connect_timeout)
        sock = dial_with_backoff(self.host, self.port, timeout)
        sock.settimeout(max(timeout, 30.0))
        _enable_keepalive(sock)
        _disable_nagle(sock)
        try:
            reply = self._roundtrip(sock, {
                "op": "hello", "version": STORE_PROTOCOL_VERSION,
            })
            if self._ever_connected:
                # Resume: re-assert the leases we held when the connection
                # died.  claim() re-grants a runner's own or expired leases
                # and skips jobs completed meanwhile — exactly the repair a
                # briefly-partitioned runner needs; ids a peer validly
                # reclaimed in the gap are dropped from the held set.
                if self._held and self._held_runner is not None:
                    granted = self._roundtrip(sock, {
                        "op": "claim", "job_ids": list(self._held),
                        "runner": self._held_runner, "ttl": self._held_ttl,
                        "now": None,
                    })["granted"]
                    self._held = dict.fromkeys(granted)
                # The new server may front different (or rewound) data;
                # drop the read cache rather than trust a foreign stamp.
                self._by_id = {}
                self._stamp = 0
        except (OSError, CodecError):
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._ever_connected = True
        self._sock = sock
        return sock

    def _roundtrip(self, sock: socket.socket, request: dict) -> dict:
        """One raw request/response exchange; raises on any failure."""
        _send_obj(sock, request)
        reply = _recv_obj(sock)
        if reply is None:
            raise CodecError("store server closed the connection mid-request")
        if not reply.get("ok"):
            kind = reply.get("kind")
            error = str(reply.get("error"))
            if kind == "ValueError":
                raise ValueError(error)
            raise NetworkStoreError(f"store server rejected {request.get('op')!r}: "
                                    f"{kind}: {error}")
        return reply

    def _drop_sock(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _call(self, op: str, _request_fn=None, **fields: Any) -> dict:
        """Send one request, reconnecting (with resume) and retrying once.

        Safe because every op is idempotent: a frame that was applied
        just before the connection died produces the same state when
        replayed after the resume handshake.  The frame is built *after*
        the connection is established — ``_request_fn`` lets ops whose
        fields depend on reconnect-reset client state (the ``records``
        mutation stamp) contribute fresh values to the retried frame.
        """
        with self._lock:
            last_error: Optional[Exception] = None
            for attempt in range(2):
                try:
                    sock = self._sock if self._sock is not None else self._connect()
                    request = dict(fields, op=op)
                    if _request_fn is not None:
                        request.update(_request_fn())
                    return self._roundtrip(sock, request)
                # CodecError subclasses ValueError, so the transport clause
                # must come first; a bare ValueError is an application error
                # relayed by the server — the connection is fine, propagate.
                except (OSError, CodecError) as exc:
                    self._drop_sock()
                    last_error = exc
            raise NetworkStoreError(
                f"store request {op!r} to {self.url} failed after reconnect: "
                f"{last_error}"
            ) from last_error

    def close(self) -> None:
        """Drop the connection; the next call would reconnect."""
        with self._lock:
            self._drop_sock()

    # -- writing -----------------------------------------------------------

    @staticmethod
    def _validate(records: Sequence[dict]) -> List[dict]:
        records = list(records)
        for rec in records:
            if "job_id" not in rec or "status" not in rec:
                raise ValueError("record needs 'job_id' and 'status' fields")
        return records

    def record(self, record: dict) -> None:
        """Append one record (a one-element :meth:`record_many` frame)."""
        self.record_many([record])

    def record_many(self, records: Sequence[dict]) -> None:
        """Append a batch in one frame, piggybacking lease renewal.

        Validation happens client-side too, so a malformed record fails
        before it crosses the wire.  The frame renews whatever leases
        this client still holds beyond the batch being fulfilled — on
        the append hot path the store hears from the runner constantly,
        shrinking the window a slow heartbeat leaves open.
        """
        records = self._validate(records)
        if not records:
            return
        with self._lock:
            renew = None
            recorded = {rec["job_id"] for rec in records}
            keep = [jid for jid in self._held if jid not in recorded]
            if keep and self._held_runner is not None:
                renew = {"job_ids": keep, "runner": self._held_runner,
                         "ttl": self._held_ttl}
            with self._timed("append"):
                self._call("record_many", records=records, renew=renew)
            for jid in recorded:
                self._held.pop(jid, None)

    # -- leases ------------------------------------------------------------

    def claim(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Claim a batch in one frame; see :meth:`StoreBackend.claim`."""
        with self._lock:
            with self._timed("claim"):
                reply = self._call(
                    "claim", job_ids=list(job_ids), runner=runner,
                    ttl=float(ttl), now=now,
                )
            granted = list(reply["granted"])
            if runner != self._held_runner:
                # One client serves one runner identity at a time; a new
                # identity supersedes the old resume set.
                self._held = {}
                self._held_runner = runner
            self._held_ttl = float(ttl)
            self._held.update(dict.fromkeys(granted))
            return granted

    def renew(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Renew a batch in one frame; see :meth:`StoreBackend.renew`."""
        with self._lock:
            reply = self._call(
                "renew", job_ids=list(job_ids), runner=runner,
                ttl=float(ttl), now=now,
            )
            held = list(reply["held"])
            if runner == self._held_runner:
                self._held_ttl = float(ttl)
                for jid in job_ids:
                    if jid not in held:
                        self._held.pop(jid, None)  # lost to a peer or fulfilled
            return held

    def release(self, job_ids: Sequence[str], runner: str) -> None:
        """Release claims in one frame; see :meth:`StoreBackend.release`."""
        with self._lock:
            self._call("release", job_ids=list(job_ids), runner=runner)
            for jid in job_ids:
                self._held.pop(jid, None)

    def leases(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Live leases by job id, fetched in one frame."""
        reply = self._call("leases", now=now)
        return {
            jid: Lease(jid, runner, deadline)
            for jid, runner, deadline in reply["leases"]
        }

    # -- reading -----------------------------------------------------------

    def records(self) -> List[dict]:
        """All records in first-appearance order, fetched incrementally.

        The request carries the last mutation stamp; a stamp-capable
        server returns only newer rows, folded into the local id-keyed
        cache exactly as the SQLite engine folds its own reads.  A
        ``full`` response (stampless backing engine) replaces the cache.
        """
        with self._lock:
            reply = self._call(
                "records", _request_fn=lambda: {"since": self._stamp}
            )
            rows = reply["records"]
            if reply.get("full"):
                self._by_id = {rec["job_id"]: rec for rec in rows}
                self._stamp = 0
            else:
                for rec in rows:
                    self._by_id[rec["job_id"]] = rec
                self._stamp = int(reply["stamp"])
            return [copy.deepcopy(r) for r in self._by_id.values()]

    def completed_ids(self) -> Set[str]:
        """Ids of done jobs, computed server-side (no record shipping)."""
        return set(self._call("completed_ids")["ids"])

    def counts(self) -> Dict[str, int]:
        """Status tallies, computed server-side."""
        return dict(self._call("counts")["counts"])

    # -- maintenance -------------------------------------------------------

    def compact(self, now: Optional[float] = None) -> CompactionStats:
        """Ask the server to compact its backing store."""
        with self._timed("compact"):
            reply = self._call("compact", now=now)
        return CompactionStats(*(int(v) for v in reply["stats"]))

    def __len__(self) -> int:
        return int(self._call("len")["n"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetworkStoreBackend {self.url}>"


def open_network_store(url: str, directory=None, **client_options: Any) -> NetworkStoreBackend:
    """Open a ``store://`` client, pinning ``directory``'s manifest to it.

    The registry hook behind :func:`repro.campaign.sharding.open_store`:
    when a campaign directory is given, its ``store-manifest.json`` is
    created (or validated) with ``engine: "store"`` and the server URL,
    so re-opening the directory *without* ``--store`` reconnects to the
    same server — the network engine keeps the same auto-detect contract
    as the local ones.  A directory already pinned to a local engine is
    refused (the data lives there, not behind a server); a directory
    pinned to a *different* server URL is re-pinned, since a restarted
    server legitimately moves ports.
    """
    host, port = parse_store_url(url)
    if directory is not None:
        # Function-level import: sharding imports this package at module
        # scope, so the manifest helpers must resolve lazily.
        from repro.campaign.sharding import (
            MANIFEST_FILENAME,
            _write_manifest_file,
            read_manifest,
        )
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = read_manifest(directory)
        if manifest is None or manifest.get("url") != url:
            if manifest is not None and manifest["engine"] != ENGINE_STORE:
                raise ValueError(
                    f"store at {directory} uses the {manifest['engine']!r} "
                    f"engine; cannot reopen it as {ENGINE_STORE!r} — serve "
                    f"it with 'campaign store-serve', or use "
                    f"'campaign migrate-store' to convert"
                )
            _write_manifest_file(
                directory / MANIFEST_FILENAME,
                {"version": 1, "engine": ENGINE_STORE, "url": url},
            )
    return NetworkStoreBackend(url, **client_options)
