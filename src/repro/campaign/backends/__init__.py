"""Pluggable result-store engines behind the :class:`StoreBackend` contract.

The campaign layer talks to its durable substrate through exactly one
seam — :class:`~repro.campaign.backends.base.StoreBackend` — and this
package owns that seam plus the engines that implement it:

* ``jsonl`` — the append-only JSONL engines
  (:class:`~repro.campaign.store.ResultStore` single file,
  :class:`~repro.campaign.sharding.ShardedResultStore` over
  ``results-<k>.jsonl`` shards), coordinated by ``flock``;
* ``sqlite`` — :class:`~repro.campaign.backends.sqlite.SQLiteStoreBackend`,
  one WAL-mode database coordinated by transactions;
* ``store://host:port`` —
  :class:`~repro.campaign.backends.netstore.NetworkStoreBackend`, a
  framed-TCP client of a ``campaign store-serve`` process
  (:class:`~repro.campaign.backends.netstore.StoreServer`), for runners
  with *no shared filesystem* at all.

A campaign directory's engine is pinned by the ``engine`` field of its
``store-manifest.json`` and resolved by
:func:`~repro.campaign.sharding.open_store`; users select one with
``campaign run --store jsonl|jsonl:N|sqlite|store://host:port`` (parsed
by :func:`parse_store_spec`) and convert between local engines with
``campaign migrate-store`` (:func:`~repro.campaign.sharding.migrate_store`).
"""

from repro.campaign.backends.base import (
    LEASE_STATUSES,
    STATUS_CLAIMED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RELEASED,
    CompactionStats,
    Lease,
    StoreBackend,
)
from repro.campaign.backends.netstore import (
    ENGINE_STORE,
    NetworkStoreBackend,
    NetworkStoreError,
    StoreServer,
    is_store_url,
    open_network_store,
    parse_store_url,
)
from repro.campaign.backends.sqlite import DB_FILENAME, SQLiteStoreBackend

#: The JSONL engine family (single file or sharded).
ENGINE_JSONL = "jsonl"
#: The SQLite engine.
ENGINE_SQLITE = "sqlite"
#: Every engine a store manifest (or ``--store``) may name
#: (``ENGINE_STORE`` appears in specs as a full ``store://host:port`` URL).
STORE_ENGINES = (ENGINE_JSONL, ENGINE_SQLITE, ENGINE_STORE)


def parse_store_spec(spec):
    """Parse a ``--store`` engine spec into ``(engine, shards)``.

    Accepted forms: ``"jsonl"`` (single file), ``"jsonl:N"`` (N JSONL
    shards), ``"sqlite"``, ``"store://host:port"`` (the network engine —
    returned whole as the engine value, since the address is part of the
    selection); ``None`` passes through as ``(None, None)`` (auto-detect
    / default).  Raises ``ValueError`` on anything else, so a typo'd CLI
    flag fails before any store is touched.
    """
    if spec is None:
        return None, None
    if is_store_url(spec):
        parse_store_url(spec)  # validate host:port up front
        return str(spec), None
    name, sep, arg = str(spec).partition(":")
    if name == ENGINE_SQLITE:
        if sep:
            raise ValueError(
                f"the sqlite engine takes no shard count, got {spec!r}"
            )
        return ENGINE_SQLITE, None
    if name == ENGINE_JSONL:
        if not sep:
            return ENGINE_JSONL, None
        try:
            shards = int(arg)
        except ValueError:
            raise ValueError(
                f"bad shard count in store spec {spec!r} (want jsonl:N)"
            ) from None
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {spec!r}")
        return ENGINE_JSONL, shards
    raise ValueError(
        f"unknown store engine {spec!r}; expected one of "
        f"{STORE_ENGINES} (jsonl optionally as jsonl:N, "
        f"store as store://host:port)"
    )


__all__ = [
    "DB_FILENAME",
    "ENGINE_JSONL",
    "ENGINE_SQLITE",
    "ENGINE_STORE",
    "LEASE_STATUSES",
    "STATUS_CLAIMED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_RELEASED",
    "STORE_ENGINES",
    "CompactionStats",
    "Lease",
    "NetworkStoreBackend",
    "NetworkStoreError",
    "SQLiteStoreBackend",
    "StoreBackend",
    "StoreServer",
    "is_store_url",
    "open_network_store",
    "parse_store_spec",
    "parse_store_url",
]
