"""Declarative campaign specifications.

The paper's experiments are *campaigns*: 100 initial simplex states x
{DET, MN, PC, PC+MN, ANDERSON} x several test functions x noise levels.  A
:class:`CampaignSpec` captures one such grid declaratively — algorithm
variants (an algorithm name plus constructor options, so "PC with k=1" and
"PC with k=2" are distinct cells), test functions, dimensionalities, noise
scales, and seeds — and expands it into a deterministic list of
:class:`Job` records.

Every job has a *stable* identifier: the SHA-1 of its canonical JSON
encoding.  Stability is what makes campaigns durable — a re-run expands the
same spec to the same ids and can skip everything the result store already
holds, and two stores from interrupted and uninterrupted runs agree
job-for-job.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.state import plain_json

#: Fields that define a job's aggregation cell (everything but the seed
#: that varies across a grid) — the single definition behind
#: :attr:`Job.cell` and the SQLite store's cell index.
CELL_FIELDS = ("label", "algorithm", "function", "dim", "sigma0")

#: Scheduling-policy fields of a spec (and the job-level subset) — pure
#: execution placement, deliberately excluded from job identity and from
#: :meth:`CampaignSpec.same_grid`: changing where or how urgently a
#: campaign runs must not orphan the results it already produced.
SCHEDULING_FIELDS = ("constraints", "priority", "weight", "max_inflight")

#: Valid values of the ``priority`` scheduling field (two-level queue).
PRIORITIES = ("high", "low")

#: Fields that define a job's identity (hashed into the job id).
_IDENTITY_FIELDS = (
    "label",
    "algorithm",
    "function",
    "dim",
    "sigma0",
    "seed",
    "noise_mode",
    "tau",
    "walltime",
    "max_steps",
    "low",
    "high",
    "options",
)


def _canonical(value: Any) -> Any:
    """Reduce a value to canonical JSON-compatible types.

    Containers are handled here (mapping keys sorted for determinism);
    scalar normalization is delegated to
    :func:`repro.core.state.plain_json`.  Non-JSON option values (e.g. a
    ``ConditionSet``) fall back to ``repr``, which is stable for the option
    objects the optimizers accept — such values hash fine but cannot be
    *persisted* (see :meth:`CampaignSpec.save`).
    """
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple, np.ndarray)):
        return [_canonical(v) for v in plain_json(value)]
    plain = plain_json(value)
    if plain is None or isinstance(plain, (bool, int, float, str)):
        return plain
    return repr(plain)


def _is_plain_json(value: Any) -> bool:
    """Whether a value survives a JSON round-trip unchanged in meaning."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_plain_json(v) for v in value)
    if isinstance(value, Mapping):
        return all(
            isinstance(k, str) and _is_plain_json(v) for k, v in value.items()
        )
    return False


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for hashing and spec comparison."""
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class AlgorithmVariant:
    """One algorithm cell of the grid: a paper name plus constructor options.

    ``label`` distinguishes variants of the same algorithm ("PC(k=1)" vs
    "PC(k=2)" in the Fig. 3.7 study); it defaults to the algorithm name.
    """

    algorithm: str
    options: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", self.algorithm.upper())
        if not self.label:
            object.__setattr__(self, "label", self.algorithm)

    def to_dict(self) -> dict:
        """Canonical JSON shape of the variant (used in spec files)."""
        return {
            "label": self.label,
            "algorithm": self.algorithm,
            "options": _canonical(self.options),
        }

    @classmethod
    def from_any(cls, value: Union[str, Mapping, "AlgorithmVariant"]) -> "AlgorithmVariant":
        """Coerce a name, mapping, or variant into an :class:`AlgorithmVariant`."""
        if isinstance(value, AlgorithmVariant):
            return value
        if isinstance(value, str):
            return cls(algorithm=value)
        return cls(
            algorithm=value["algorithm"],
            options=dict(value.get("options", {})),
            label=value.get("label", ""),
        )


@dataclass(frozen=True)
class Job:
    """One fully-specified optimizer run inside a campaign.

    ``options`` may hold rich objects (e.g. ``ConditionSet``) when the
    campaign is built programmatically; JSON spec files are restricted to
    plain JSON options.

    ``constraints`` and ``priority`` are scheduling policy inherited from
    the spec: the capability names a worker must declare to run this job,
    and which of the two per-tenant queue bands it enters.  Neither is
    part of the job's identity — moving a campaign to different workers
    must not change its job ids.
    """

    campaign: str
    label: str
    algorithm: str
    function: str
    dim: int
    sigma0: float
    seed: int
    noise_mode: str = "resample"
    tau: float = 1e-3
    walltime: float = 3e4
    max_steps: int = 600
    low: float = -5.0
    high: float = 5.0
    options: Dict[str, Any] = field(default_factory=dict)
    constraints: Sequence[str] = ()
    priority: str = "low"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "constraints", tuple(sorted(str(c) for c in self.constraints))
        )
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )

    @functools.cached_property
    def job_id(self) -> str:
        """Stable content hash of the job's identity fields.

        Cached per instance (writes through ``__dict__``, which frozen
        dataclasses permit) — status/watch loops touch every job's id on
        every poll, and the canonical-JSON + SHA-1 work dominates
        otherwise.
        """
        identity = {name: getattr(self, name) for name in _IDENTITY_FIELDS}
        digest = hashlib.sha1(canonical_json(identity).encode("utf-8"))
        return digest.hexdigest()[:12]

    @property
    def cell(self) -> tuple:
        """The aggregation cell this job belongs to (:data:`CELL_FIELDS`)."""
        return tuple(getattr(self, name) for name in CELL_FIELDS)

    def to_dict(self) -> dict:
        """Plain-JSON encoding of the job, including its derived ``job_id``."""
        d = {name: _canonical(getattr(self, name)) for name in _IDENTITY_FIELDS}
        d["campaign"] = self.campaign
        d["job_id"] = self.job_id
        if self.constraints:
            d["constraints"] = list(self.constraints)
        if self.priority != "low":
            d["priority"] = self.priority
        return d

    @classmethod
    def from_dict(cls, data: Mapping) -> "Job":
        """Rebuild a job from :meth:`to_dict` output (extra keys ignored)."""
        kwargs = {name: data[name] for name in _IDENTITY_FIELDS if name in data}
        kwargs["options"] = dict(kwargs.get("options", {}))
        kwargs["constraints"] = tuple(data.get("constraints", ()))
        kwargs["priority"] = data.get("priority", "low")
        return cls(campaign=data.get("campaign", ""), **kwargs)


@dataclass
class CampaignSpec:
    """A declarative grid of optimizer runs.

    Seeds come either from an explicit ``seeds`` list (used when paired
    comparisons must share initial states with legacy sweeps) or are spawned
    deterministically from ``base_seed`` via ``numpy.random.SeedSequence``
    when only ``n_seeds`` is given — independent, reproducible streams
    regardless of execution order or backend.

    The :data:`SCHEDULING_FIELDS` — ``constraints`` (capability names a
    worker must declare to run this campaign's jobs), ``priority``
    (``"high"``/``"low"`` queue band), ``weight`` (this tenant's share of
    dispatch slots under ``campaign serve``), and ``max_inflight`` (a
    per-tenant cap on concurrently dispatched jobs, ``None`` = unlimited)
    — are execution policy: they persist in ``spec.json`` but are excluded
    from job identity and :meth:`same_grid`, so editing them never orphans
    existing results.
    """

    name: str
    algorithms: Sequence[Union[str, Mapping, AlgorithmVariant]]
    functions: Sequence[str] = ("rosenbrock",)
    dims: Sequence[int] = (4,)
    sigma0s: Sequence[float] = (1000.0,)
    seeds: Optional[Sequence[int]] = None
    n_seeds: int = 8
    base_seed: int = 0
    noise_mode: str = "resample"
    tau: float = 1e-3
    walltime: float = 3e4
    max_steps: int = 600
    low: float = -5.0
    high: float = 5.0
    overrides: Sequence[Mapping] = ()
    constraints: Sequence[str] = ()
    priority: str = "low"
    weight: float = 1.0
    max_inflight: Optional[int] = None

    def __post_init__(self) -> None:
        self.algorithms = [AlgorithmVariant.from_any(a) for a in self.algorithms]
        if not self.algorithms:
            raise ValueError("campaign needs at least one algorithm variant")
        labels = [v.label for v in self.algorithms]
        if len(set(labels)) != len(labels):
            raise ValueError(f"algorithm variant labels must be unique, got {labels}")
        if self.seeds is None and self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {self.n_seeds}")
        self.constraints = tuple(sorted(str(c) for c in self.constraints))
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )
        if not (float(self.weight) > 0):
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.max_inflight is not None and int(self.max_inflight) < 1:
            raise ValueError(
                f"max_inflight must be >= 1 or None, got {self.max_inflight}"
            )

    # -- seeds ------------------------------------------------------------

    def resolved_seeds(self) -> List[int]:
        """The per-job integer seeds, explicit or SeedSequence-spawned."""
        if self.seeds is not None:
            return [int(s) for s in self.seeds]
        root = np.random.SeedSequence(self.base_seed)
        return [int(child.generate_state(1, np.uint32)[0]) for child in root.spawn(self.n_seeds)]

    # -- expansion --------------------------------------------------------

    def expand(self) -> List[Job]:
        """Deterministic product expansion into :class:`Job` records."""
        jobs: List[Job] = []
        seeds = self.resolved_seeds()
        for variant, function, dim, sigma0, seed in itertools.product(
            self.algorithms, self.functions, self.dims, self.sigma0s, seeds
        ):
            job = Job(
                campaign=self.name,
                label=variant.label,
                algorithm=variant.algorithm,
                function=function,
                dim=int(dim),
                sigma0=float(sigma0),
                seed=int(seed),
                noise_mode=self.noise_mode,
                tau=float(self.tau),
                walltime=float(self.walltime),
                max_steps=int(self.max_steps),
                low=float(self.low),
                high=float(self.high),
                options=dict(variant.options),
                constraints=self.constraints,
                priority=self.priority,
            )
            jobs.append(self._apply_overrides(job))
        return jobs

    def _apply_overrides(self, job: Job) -> Job:
        """Apply per-job option overrides (`{"where": {...}, "options": {...}}`)."""
        options = dict(job.options)
        touched = False
        for rule in self.overrides:
            where = rule.get("where", {})
            if all(getattr(job, k, None) == v for k, v in where.items()):
                options.update(rule.get("options", {}))
                touched = True
        return replace(job, options=options) if touched else job

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON encoding of the grid (the ``spec.json`` payload)."""
        return {
            "name": self.name,
            "algorithms": [v.to_dict() for v in self.algorithms],
            "functions": list(self.functions),
            "dims": [int(d) for d in self.dims],
            "sigma0s": [float(s) for s in self.sigma0s],
            "seeds": None if self.seeds is None else [int(s) for s in self.seeds],
            "n_seeds": int(self.n_seeds),
            "base_seed": int(self.base_seed),
            "noise_mode": self.noise_mode,
            "tau": float(self.tau),
            "walltime": float(self.walltime),
            "max_steps": int(self.max_steps),
            "low": float(self.low),
            "high": float(self.high),
            "overrides": [_canonical(r) for r in self.overrides],
            "constraints": list(self.constraints),
            "priority": self.priority,
            "weight": float(self.weight),
            "max_inflight": None if self.max_inflight is None else int(self.max_inflight),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (``version`` ignored)."""
        kwargs = dict(data)
        kwargs.pop("version", None)
        return cls(**kwargs)

    def save(self, path) -> Path:
        """Persist the spec as JSON.

        Rich (non-JSON) option values — e.g. a ``ConditionSet`` — would be
        stringified by the encoder and come back as useless strings on
        load, so persisting them is refused loudly; such specs work
        in-memory only (the benchmark harness path).
        """
        for variant in self.algorithms:
            if not _is_plain_json(variant.options):
                raise ValueError(
                    f"variant {variant.label!r} has non-JSON options "
                    f"{variant.options!r}; rich option objects cannot be "
                    f"persisted to a campaign directory — use an in-memory "
                    f"ResultStore, or express the option as plain JSON"
                )
        for rule in self.overrides:
            if not _is_plain_json(rule):
                raise ValueError(
                    f"override rule {rule!r} has non-JSON values and cannot "
                    f"be persisted to a campaign directory"
                )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        """Load a spec saved by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def same_grid(self, other: "CampaignSpec") -> bool:
        """Whether two specs expand to the identical job set.

        Scheduling-policy fields (:data:`SCHEDULING_FIELDS`) are ignored:
        re-prioritizing or re-constraining a campaign leaves its grid —
        and therefore its resumability — intact.
        """
        def grid(spec: "CampaignSpec") -> dict:
            d = spec.to_dict()
            for name in SCHEDULING_FIELDS:
                d.pop(name, None)
            return d

        return canonical_json(grid(self)) == canonical_json(grid(other))
