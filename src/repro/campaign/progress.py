"""Live campaign progress: heartbeat snapshots, rates, ETAs, watch loops.

Two consumers share the :class:`ProgressSnapshot` shape:

* ``campaign run --progress`` — the runner emits a snapshot after every
  recorded batch (the heartbeat), with the rate measured over the whole
  call so the ETA stays stable;
* ``campaign watch`` — :func:`watch_campaign` polls a campaign directory
  that *other* processes are draining and yields a snapshot per tick,
  with the rate measured between consecutive observations.  Watch
  snapshots also carry per-cell progress (:class:`CellProgress`) and the
  count of jobs currently under a live claim lease, so a dashboard can
  tell "nobody is working on this cell" from "claimed, in flight".

Both read only the spec and the result store — through the
:class:`~repro.campaign.backends.base.StoreBackend` contract, so every
engine (single-file JSONL, sharded, SQLite) is watchable identically —
and watching works from any host that can see the shared campaign
directory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple


def format_duration(seconds: Optional[float]) -> str:
    """Compact human duration: ``42s``, ``3m12s``, ``2h05m``, or ``?``."""
    if seconds is None or seconds != seconds or seconds < 0:
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


@dataclass(frozen=True)
class CellProgress:
    """Completion state of one grid cell (variant x function x dim x sigma0).

    ``claimed`` counts unfinished jobs currently under a live lease —
    some runner is entitled to be executing them right now; expired or
    released claims do not count.
    """

    label: str
    algorithm: str
    function: str
    dim: int
    sigma0: float
    total: int
    done: int
    failed: int
    claimed: int

    def to_dict(self) -> dict:
        """Flat JSON shape for ``campaign watch --json`` consumers."""
        return {
            "label": self.label,
            "algorithm": self.algorithm,
            "function": self.function,
            "dim": self.dim,
            "sigma0": self.sigma0,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "claimed": self.claimed,
        }

    def line(self) -> str:
        """One indented per-cell line for the plain ``watch --cells`` view."""
        extras = ""
        if self.claimed:
            extras += f", {self.claimed} claimed"
        if self.failed:
            extras += f", {self.failed} failed"
        return (
            f"  {self.label} {self.function} d={self.dim} "
            f"s0={self.sigma0:g}: {self.done}/{self.total} done{extras}"
        )


@dataclass(frozen=True)
class WorkerUtilization:
    """Per-rank utilization of one mw worker — the paper-style table row.

    Sourced from the telemetry trace's latest ``workers`` event (the
    runner folds the mw driver's dispatch/reply bookkeeping into one
    event per run).  ``straggler`` flags a rank whose utilization fell
    below half the pool median — the stalls the paper's worker-table
    diagnosis is after.
    """

    rank: int
    tasks: int            # replies received from this rank (frames)
    busy_s: float         # accumulated dispatch-to-reply seconds
    elapsed_s: float      # observation window (driver lifetime)
    utilization: float    # busy_s / elapsed_s
    alive: bool
    straggler: bool = False
    inflight: int = 0     # evaluations dispatched but unanswered (a batch
                          # frame counts its q, so depth is honest under
                          # --eval-batch)
    evals: int = 0        # evaluations completed (>= tasks under batching)

    def to_dict(self) -> dict:
        """Flat JSON shape for ``campaign watch --json`` consumers."""
        return {
            "rank": self.rank,
            "tasks": self.tasks,
            "evals": self.evals,
            "busy_s": self.busy_s,
            "elapsed_s": self.elapsed_s,
            "utilization": self.utilization,
            "alive": self.alive,
            "straggler": self.straggler,
            "inflight": self.inflight,
        }

    def line(self) -> str:
        """One indented per-worker line for the ``watch --cells`` view."""
        flags = "" if self.alive else " [dead]"
        if self.straggler:
            flags += " [straggler]"
        depth = f", {self.inflight} in flight" if self.inflight else ""
        # Under --eval-batch a frame carries several evaluations; show
        # both counts when they diverge so the table stays comparable
        # across batch sizes.
        work = f"{self.tasks} tasks"
        if self.evals > self.tasks:
            work += f" ({self.evals} evals)"
        return (
            f"  worker {self.rank}: {work}{depth}, "
            f"busy {self.busy_s:.1f}s/{self.elapsed_s:.1f}s "
            f"({self.utilization:.0%}){flags}"
        )


def workers_from_trace(directory) -> Tuple[WorkerUtilization, ...]:
    """Worker-utilization rows from a campaign's telemetry trace.

    Reads the latest ``workers`` event in ``<directory>/telemetry.jsonl``
    (written by mw-backend runs with telemetry enabled) and flags
    stragglers: with more than one worker, any rank whose utilization is
    below half the pool median.  Returns ``()`` when there is no trace
    or no mw run has reported yet.
    """
    from repro.telemetry import TELEMETRY_FILENAME, last_event

    path = Path(directory) / TELEMETRY_FILENAME
    if not path.exists():
        return ()
    event = last_event(path, "workers")
    if event is None:
        return ()
    rows = sorted(event.get("workers") or [], key=lambda r: int(r.get("rank", 0)))
    utils = sorted(float(r.get("utilization", 0.0)) for r in rows)
    median = utils[len(utils) // 2] if utils else 0.0
    return tuple(
        WorkerUtilization(
            rank=int(r.get("rank", 0)),
            tasks=int(r.get("tasks", 0)),
            busy_s=float(r.get("busy_s", 0.0)),
            elapsed_s=float(r.get("elapsed_s", 0.0)),
            utilization=float(r.get("utilization", 0.0)),
            alive=bool(r.get("alive", False)),
            straggler=(
                len(rows) > 1
                and float(r.get("utilization", 0.0)) < 0.5 * median
            ),
            inflight=int(r.get("inflight", 0)),
            evals=int(r.get("evals", r.get("tasks", 0))),
        )
        for r in rows
    )


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observation of a campaign's completion state."""

    campaign: str
    n_total: int          # jobs in the expanded grid
    done: int             # completed store-wide (all cooperating runners)
    failed: int           # latest-attempt failures (retried on re-run)
    elapsed_s: float      # since the run call / watch loop started
    rate: float           # completions per second over the measurement window
    claimed: int = 0      # unfinished jobs under a live lease (watch only)
    cells: Tuple[CellProgress, ...] = ()  # per-cell detail (watch only)
    workers: Tuple[WorkerUtilization, ...] = ()  # mw utilization (telemetry)

    @property
    def remaining(self) -> int:
        """Jobs not yet completed anywhere."""
        return max(0, self.n_total - self.done)

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to drain the remainder (``None`` if unknown)."""
        if self.rate <= 0 or self.remaining == 0:
            return None
        return self.remaining / self.rate

    def to_dict(self) -> dict:
        """Machine-readable snapshot for dashboards (``campaign watch --json``).

        One flat JSON-serializable object per observation; derived fields
        (``remaining``, ``eta_s``) are materialized so consumers need no
        arithmetic.  ``eta_s`` is ``None`` while the rate is unknown;
        ``cells`` carries the per-cell breakdown when the producer
        computed one (the watch loop does, the runner heartbeat does not).
        """
        return {
            "campaign": self.campaign,
            "n_total": self.n_total,
            "done": self.done,
            "failed": self.failed,
            "claimed": self.claimed,
            "remaining": self.remaining,
            "elapsed_s": self.elapsed_s,
            "rate": self.rate,
            "eta_s": self.eta_s,
            "cells": [cell.to_dict() for cell in self.cells],
            "workers": [worker.to_dict() for worker in self.workers],
        }

    def line(self) -> str:
        """The one-line heartbeat format shared by ``--progress`` and ``watch``."""
        rate = f"{self.rate:.2f} jobs/s" if self.rate > 0 else "? jobs/s"
        claimed = f", {self.claimed} claimed" if self.claimed else ""
        return (
            f"[{self.campaign}] {self.done}/{self.n_total} done, "
            f"{self.failed} failed, {self.remaining} remaining{claimed} | "
            f"{rate} | eta {format_duration(self.eta_s)} | "
            f"elapsed {format_duration(self.elapsed_s)}"
        )


def cells_from_status(status: dict) -> Tuple[CellProgress, ...]:
    """Build sorted :class:`CellProgress` rows from ``Campaign.status()``.

    ``status["cells"]`` maps the cell tuple (label, algorithm, function,
    dim, sigma0) to its count dict; the rows come back sorted by that
    tuple so output order is stable across polls and layouts.
    """
    rows = []
    for key in sorted(status["cells"]):
        label, algorithm, function, dim, sigma0 = key
        counts = status["cells"][key]
        rows.append(
            CellProgress(
                label=label,
                algorithm=algorithm,
                function=function,
                dim=int(dim),
                sigma0=float(sigma0),
                total=counts["total"],
                done=counts["done"],
                failed=counts["failed"],
                claimed=counts["claimed"],
            )
        )
    return tuple(rows)


def _store_mtime_window(campaign) -> Optional[float]:
    """Seconds between campaign creation and the store's last write.

    The creation proxy is ``spec.json``'s mtime (written once, when the
    campaign directory is initialised); the last-write proxy is the
    newest mtime across the store's on-disk files — the single JSONL
    file, every ``results*`` file of a sharded directory, or the SQLite
    database plus its WAL.  ``None`` when the window cannot be measured
    (in-memory store, store not yet written, or clock skew producing a
    non-positive window).
    """
    try:
        t_start = (Path(campaign.directory) / "spec.json").stat().st_mtime
    except (OSError, AttributeError):
        return None
    store_path = getattr(campaign.store, "path", None)
    if store_path is None:
        return None
    store_path = Path(store_path)
    if store_path.is_dir():
        candidates = list(store_path.glob("results*"))
    else:
        candidates = [store_path, store_path.with_name(store_path.name + "-wal")]
    latest = None
    for candidate in candidates:
        try:
            mtime = candidate.stat().st_mtime
        except OSError:
            continue
        latest = mtime if latest is None else max(latest, mtime)
    if latest is None:
        return None
    window = latest - t_start
    return window if window > 0 else None


def seed_rate(campaign, done: int) -> float:
    """First-tick completion rate estimated from store file mtimes.

    A watch loop's first observation has no measurement window of its
    own, so estimate one from the store instead: ``done`` jobs landed
    between campaign creation (``spec.json`` mtime) and the store's last
    write.  Returns 0 when nothing is done yet or the window cannot be
    measured — the pre-fix behaviour, never worse.
    """
    if done <= 0:
        return 0.0
    window = _store_mtime_window(campaign)
    if not window:
        return 0.0
    return done / window


def watch_campaign(
    campaign,
    interval: float = 2.0,
    max_ticks: Optional[int] = None,
    _sleep: Callable[[float], None] = time.sleep,
    _clock: Callable[[], float] = time.monotonic,
) -> Iterator[ProgressSnapshot]:
    """Poll a campaign directory, yielding one snapshot per tick.

    Ends when every job has settled (done or failed — failures only clear
    on a re-run, so waiting for them would hang) or after ``max_ticks``
    snapshots (``1`` gives the ``--once`` behaviour).  The per-tick rate is
    the completion delta between observations over the wall-time between
    them; the first tick has no window of its own, so its rate is seeded
    from store-file mtimes (:func:`seed_rate`) — ``campaign watch --once``
    mid-drain reports a usable rate and ETA instead of ``?``.  Each
    snapshot carries the per-cell breakdown, live-claim counts, and (when
    a telemetry trace reports them) per-worker utilization rows.

    ``campaign`` is a :class:`~repro.campaign.runner.Campaign`; ``_sleep``
    and ``_clock`` are injectable for tests.
    """
    t0 = _clock()
    prev_done: Optional[int] = None
    prev_t = t0
    ticks = 0
    while True:
        status = campaign.status()
        now = _clock()
        done = status["done"]
        if prev_done is None:
            rate = seed_rate(campaign, done)
        elif now > prev_t:
            rate = max(0.0, (done - prev_done) / (now - prev_t))
        else:
            rate = 0.0
        yield ProgressSnapshot(
            campaign=status["name"],
            n_total=status["n_jobs"],
            done=done,
            failed=status["failed"],
            elapsed_s=now - t0,
            rate=rate,
            claimed=status.get("claimed", 0),
            cells=cells_from_status(status),
            workers=workers_from_trace(campaign.directory),
        )
        ticks += 1
        if max_ticks is not None and ticks >= max_ticks:
            return
        if done + status["failed"] >= status["n_jobs"]:
            return
        prev_done, prev_t = done, now
        _sleep(interval)
