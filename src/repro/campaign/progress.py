"""Live campaign progress: heartbeat snapshots, rates, ETAs, watch loops.

Two consumers share the :class:`ProgressSnapshot` shape:

* ``campaign run --progress`` — the runner emits a snapshot after every
  recorded batch (the heartbeat), with the rate measured over the whole
  call so the ETA stays stable;
* ``campaign watch`` — :func:`watch_campaign` polls a campaign directory
  that *other* processes are draining and yields a snapshot per tick,
  with the rate measured between consecutive observations.  Watch
  snapshots also carry per-cell progress (:class:`CellProgress`) and the
  count of jobs currently under a live claim lease, so a dashboard can
  tell "nobody is working on this cell" from "claimed, in flight".

Both read only the spec and the result store — through the
:class:`~repro.campaign.backends.base.StoreBackend` contract, so every
engine (single-file JSONL, sharded, SQLite) is watchable identically —
and watching works from any host that can see the shared campaign
directory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple


def format_duration(seconds: Optional[float]) -> str:
    """Compact human duration: ``42s``, ``3m12s``, ``2h05m``, or ``?``."""
    if seconds is None or seconds != seconds or seconds < 0:
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


@dataclass(frozen=True)
class CellProgress:
    """Completion state of one grid cell (variant x function x dim x sigma0).

    ``claimed`` counts unfinished jobs currently under a live lease —
    some runner is entitled to be executing them right now; expired or
    released claims do not count.
    """

    label: str
    algorithm: str
    function: str
    dim: int
    sigma0: float
    total: int
    done: int
    failed: int
    claimed: int

    def to_dict(self) -> dict:
        """Flat JSON shape for ``campaign watch --json`` consumers."""
        return {
            "label": self.label,
            "algorithm": self.algorithm,
            "function": self.function,
            "dim": self.dim,
            "sigma0": self.sigma0,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "claimed": self.claimed,
        }

    def line(self) -> str:
        """One indented per-cell line for the plain ``watch --cells`` view."""
        extras = ""
        if self.claimed:
            extras += f", {self.claimed} claimed"
        if self.failed:
            extras += f", {self.failed} failed"
        return (
            f"  {self.label} {self.function} d={self.dim} "
            f"s0={self.sigma0:g}: {self.done}/{self.total} done{extras}"
        )


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observation of a campaign's completion state."""

    campaign: str
    n_total: int          # jobs in the expanded grid
    done: int             # completed store-wide (all cooperating runners)
    failed: int           # latest-attempt failures (retried on re-run)
    elapsed_s: float      # since the run call / watch loop started
    rate: float           # completions per second over the measurement window
    claimed: int = 0      # unfinished jobs under a live lease (watch only)
    cells: Tuple[CellProgress, ...] = ()  # per-cell detail (watch only)

    @property
    def remaining(self) -> int:
        """Jobs not yet completed anywhere."""
        return max(0, self.n_total - self.done)

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to drain the remainder (``None`` if unknown)."""
        if self.rate <= 0 or self.remaining == 0:
            return None
        return self.remaining / self.rate

    def to_dict(self) -> dict:
        """Machine-readable snapshot for dashboards (``campaign watch --json``).

        One flat JSON-serializable object per observation; derived fields
        (``remaining``, ``eta_s``) are materialized so consumers need no
        arithmetic.  ``eta_s`` is ``None`` while the rate is unknown;
        ``cells`` carries the per-cell breakdown when the producer
        computed one (the watch loop does, the runner heartbeat does not).
        """
        return {
            "campaign": self.campaign,
            "n_total": self.n_total,
            "done": self.done,
            "failed": self.failed,
            "claimed": self.claimed,
            "remaining": self.remaining,
            "elapsed_s": self.elapsed_s,
            "rate": self.rate,
            "eta_s": self.eta_s,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def line(self) -> str:
        """The one-line heartbeat format shared by ``--progress`` and ``watch``."""
        rate = f"{self.rate:.2f} jobs/s" if self.rate > 0 else "? jobs/s"
        claimed = f", {self.claimed} claimed" if self.claimed else ""
        return (
            f"[{self.campaign}] {self.done}/{self.n_total} done, "
            f"{self.failed} failed, {self.remaining} remaining{claimed} | "
            f"{rate} | eta {format_duration(self.eta_s)} | "
            f"elapsed {format_duration(self.elapsed_s)}"
        )


def cells_from_status(status: dict) -> Tuple[CellProgress, ...]:
    """Build sorted :class:`CellProgress` rows from ``Campaign.status()``.

    ``status["cells"]`` maps the cell tuple (label, algorithm, function,
    dim, sigma0) to its count dict; the rows come back sorted by that
    tuple so output order is stable across polls and layouts.
    """
    rows = []
    for key in sorted(status["cells"]):
        label, algorithm, function, dim, sigma0 = key
        counts = status["cells"][key]
        rows.append(
            CellProgress(
                label=label,
                algorithm=algorithm,
                function=function,
                dim=int(dim),
                sigma0=float(sigma0),
                total=counts["total"],
                done=counts["done"],
                failed=counts["failed"],
                claimed=counts["claimed"],
            )
        )
    return tuple(rows)


def watch_campaign(
    campaign,
    interval: float = 2.0,
    max_ticks: Optional[int] = None,
    _sleep: Callable[[float], None] = time.sleep,
    _clock: Callable[[], float] = time.monotonic,
) -> Iterator[ProgressSnapshot]:
    """Poll a campaign directory, yielding one snapshot per tick.

    Ends when every job has settled (done or failed — failures only clear
    on a re-run, so waiting for them would hang) or after ``max_ticks``
    snapshots (``1`` gives the ``--once`` behaviour).  The per-tick rate is
    the completion delta between observations over the wall-time between
    them; the first tick has no window, so its rate is reported as 0.
    Each snapshot carries the per-cell breakdown and live-claim counts.

    ``campaign`` is a :class:`~repro.campaign.runner.Campaign`; ``_sleep``
    and ``_clock`` are injectable for tests.
    """
    t0 = _clock()
    prev_done: Optional[int] = None
    prev_t = t0
    ticks = 0
    while True:
        status = campaign.status()
        now = _clock()
        done = status["done"]
        rate = 0.0
        if prev_done is not None and now > prev_t:
            rate = max(0.0, (done - prev_done) / (now - prev_t))
        yield ProgressSnapshot(
            campaign=status["name"],
            n_total=status["n_jobs"],
            done=done,
            failed=status["failed"],
            elapsed_s=now - t0,
            rate=rate,
            claimed=status.get("claimed", 0),
            cells=cells_from_status(status),
        )
        ticks += 1
        if max_ticks is not None and ticks >= max_ticks:
            return
        if done + status["failed"] >= status["n_jobs"]:
            return
        prev_done, prev_t = done, now
        _sleep(interval)
