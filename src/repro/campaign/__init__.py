"""Campaign orchestration: durable, parallel, resumable experiment sweeps.

The layer between one ``optimize()`` call and a paper-scale study:
a declarative :class:`CampaignSpec` expands into :class:`Job` records with
stable ids, a :class:`CampaignRunner` executes the pending ones on the
serial/thread/process backends, a :class:`ResultStore` records each outcome
append-only (so interrupted campaigns resume instead of restarting), and
the aggregation helpers reduce the store back to the paper's per-cell and
paired statistics.

CLI: ``python -m repro campaign run|status|summary|compare``.
"""

from repro.campaign.aggregate import (
    CellSummary,
    PairedComparison,
    compare_labels,
    paired_minima_from_records,
    summarize,
)
from repro.campaign.execution import execute_job, job_function, run_job
from repro.campaign.runner import (
    RESULTS_FILENAME,
    SPEC_FILENAME,
    Campaign,
    CampaignReport,
    CampaignRunner,
)
from repro.campaign.spec import AlgorithmVariant, CampaignSpec, Job, canonical_json
from repro.campaign.store import STATUS_DONE, STATUS_FAILED, ResultStore

__all__ = [
    "AlgorithmVariant",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CellSummary",
    "Job",
    "PairedComparison",
    "RESULTS_FILENAME",
    "ResultStore",
    "SPEC_FILENAME",
    "STATUS_DONE",
    "STATUS_FAILED",
    "canonical_json",
    "compare_labels",
    "execute_job",
    "job_function",
    "paired_minima_from_records",
    "run_job",
    "summarize",
]
