"""Campaign orchestration: durable, parallel, resumable experiment sweeps.

The layer between one ``optimize()`` call and a paper-scale study:
a declarative :class:`CampaignSpec` expands into :class:`Job` records with
stable ids, a :class:`CampaignRunner` executes the pending ones on the
serial/thread/process backends or distributes them through the
:class:`~repro.mw.MWDriver` master-worker layer (``backend="mw"``), a
:class:`ResultStore` records each outcome append-only (so interrupted
campaigns resume instead of restarting, and several runner processes or
hosts can cooperatively drain one campaign directory), and the
aggregation helpers reduce the store back to the paper's per-cell and
paired statistics.  :meth:`ResultStore.compact` keeps 100k-job stores
readable; :mod:`.progress` provides the live heartbeat and watch loops.

CLI: ``python -m repro campaign run|status|watch|summary|compare|compact``.
See ``docs/CAMPAIGNS.md`` for the end-to-end guide and
``docs/ARCHITECTURE.md`` for how this subsystem fits the rest.
"""

from repro.campaign.aggregate import (
    CellSummary,
    PairedComparison,
    compare_labels,
    paired_minima_from_records,
    summarize,
)
from repro.campaign.execution import execute_job, job_function, mw_job_executor, run_job
from repro.campaign.progress import ProgressSnapshot, format_duration, watch_campaign
from repro.campaign.runner import (
    MW_TRANSPORTS,
    RESULTS_FILENAME,
    RUNNER_BACKENDS,
    SPEC_FILENAME,
    Campaign,
    CampaignReport,
    CampaignRunner,
)
from repro.campaign.spec import AlgorithmVariant, CampaignSpec, Job, canonical_json
from repro.campaign.store import (
    STATUS_DONE,
    STATUS_FAILED,
    CompactionStats,
    ResultStore,
)

__all__ = [
    "AlgorithmVariant",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CellSummary",
    "CompactionStats",
    "Job",
    "MW_TRANSPORTS",
    "PairedComparison",
    "ProgressSnapshot",
    "RESULTS_FILENAME",
    "RUNNER_BACKENDS",
    "ResultStore",
    "SPEC_FILENAME",
    "STATUS_DONE",
    "STATUS_FAILED",
    "canonical_json",
    "compare_labels",
    "execute_job",
    "format_duration",
    "job_function",
    "mw_job_executor",
    "paired_minima_from_records",
    "run_job",
    "summarize",
    "watch_campaign",
]
