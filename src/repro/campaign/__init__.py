"""Campaign orchestration: durable, parallel, resumable experiment sweeps.

The layer between one ``optimize()`` call and a paper-scale study:
a declarative :class:`CampaignSpec` expands into :class:`Job` records with
stable ids, a :class:`CampaignRunner` executes the pending ones on the
serial/thread/process backends or distributes them through the
:class:`~repro.mw.MWDriver` master-worker layer (``backend="mw"``), a
:class:`ResultStore` records each outcome append-only (so interrupted
campaigns resume instead of restarting), and the aggregation helpers
reduce the store back to the paper's per-cell and paired statistics.

Any number of runner processes or hosts cooperatively drain one campaign
directory: claim **leases** in the store (:meth:`ResultStore.claim`,
granted under the store lock, renewed on a heartbeat, expiring when a
runner is killed) guarantee each job is executed exactly once.  The
store itself is a pluggable **engine** behind the
:class:`~repro.campaign.backends.base.StoreBackend` contract
(:mod:`.backends`): the append-only JSONL file, the **sharded**
``results-<k>.jsonl`` layout (:class:`ShardedResultStore`,
:func:`open_store`) so multi-million-job campaigns don't serialize every
append through one lock, or a transactional **SQLite** database
(:class:`SQLiteStoreBackend`, ``--store sqlite``) that coordinates
through the database instead of filesystem locks — or a **network**
store (:class:`NetworkStoreBackend`, ``--store store://host:port``)
speaking framed TCP to a ``campaign store-serve`` process
(:class:`StoreServer`), so runners need no shared filesystem at all.
:func:`migrate_store` converts a campaign between engines or shard
counts losslessly; :meth:`ResultStore.compact` keeps long-lived stores
readable; :mod:`.progress` provides the live heartbeat, per-cell
progress, and watch loops.

Many campaigns can also share **one** worker fleet: ``campaign serve``
(:class:`MultiCampaignMaster`, :mod:`.scheduler`) drains any number of
campaign directories through a single master, sharing dispatch slots by
deficit-weighted round-robin and placing each tenant's jobs only on
workers whose capability vectors cover the tenant's constraints.

CLI: ``python -m repro campaign
run|serve|status|watch|metrics|summary|compare|compact|migrate-store|store-serve``.
Run with ``--telemetry`` (or ``$REPRO_TELEMETRY=1``) to record
:mod:`repro.telemetry` metrics and a job-lifecycle trace alongside the
results; ``campaign metrics`` reads them back.
See ``docs/CAMPAIGNS.md`` for the end-to-end guide and
``docs/ARCHITECTURE.md`` for how this subsystem fits the rest.
"""

from repro.campaign.backends import (
    ENGINE_JSONL,
    ENGINE_SQLITE,
    ENGINE_STORE,
    STORE_ENGINES,
    NetworkStoreBackend,
    NetworkStoreError,
    SQLiteStoreBackend,
    StoreBackend,
    StoreServer,
    parse_store_spec,
)
from repro.campaign.aggregate import (
    CellSummary,
    PairedComparison,
    compare_labels,
    paired_minima_from_records,
    summarize,
)
from repro.campaign.execution import (
    JOB_AUDIT_ENV,
    RUN_ID_ENV,
    execute_job,
    job_function,
    mw_job_executor,
    run_job,
)
from repro.campaign.progress import (
    CellProgress,
    ProgressSnapshot,
    WorkerUtilization,
    cells_from_status,
    format_duration,
    seed_rate,
    watch_campaign,
    workers_from_trace,
)
from repro.campaign.runner import (
    DEFAULT_LEASE_TTL,
    MW_TRANSPORTS,
    RESULTS_FILENAME,
    RUNNER_BACKENDS,
    SPEC_FILENAME,
    Campaign,
    CampaignReport,
    CampaignRunner,
    default_runner_id,
)
from repro.campaign.scheduler import (
    CampaignScheduler,
    MultiCampaignMaster,
    TenantQueue,
    serve_status,
)
from repro.campaign.sharding import (
    MANIFEST_FILENAME,
    ShardedResultStore,
    migrate_legacy_store,
    migrate_store,
    open_store,
    read_manifest,
    shard_index,
)
from repro.campaign.spec import AlgorithmVariant, CampaignSpec, Job, canonical_json
from repro.campaign.store import (
    STATUS_CLAIMED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RELEASED,
    CompactionStats,
    Lease,
    ResultStore,
)

__all__ = [
    "AlgorithmVariant",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CampaignScheduler",
    "CampaignSpec",
    "CellProgress",
    "CellSummary",
    "CompactionStats",
    "DEFAULT_LEASE_TTL",
    "ENGINE_JSONL",
    "ENGINE_SQLITE",
    "ENGINE_STORE",
    "JOB_AUDIT_ENV",
    "Job",
    "Lease",
    "MANIFEST_FILENAME",
    "MW_TRANSPORTS",
    "MultiCampaignMaster",
    "NetworkStoreBackend",
    "NetworkStoreError",
    "PairedComparison",
    "ProgressSnapshot",
    "RESULTS_FILENAME",
    "RUNNER_BACKENDS",
    "RUN_ID_ENV",
    "ResultStore",
    "SPEC_FILENAME",
    "STATUS_CLAIMED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_RELEASED",
    "STORE_ENGINES",
    "SQLiteStoreBackend",
    "ShardedResultStore",
    "StoreBackend",
    "StoreServer",
    "TenantQueue",
    "WorkerUtilization",
    "canonical_json",
    "cells_from_status",
    "compare_labels",
    "default_runner_id",
    "execute_job",
    "format_duration",
    "job_function",
    "migrate_legacy_store",
    "migrate_store",
    "mw_job_executor",
    "open_store",
    "paired_minima_from_records",
    "parse_store_spec",
    "read_manifest",
    "run_job",
    "seed_rate",
    "serve_status",
    "shard_index",
    "summarize",
    "watch_campaign",
    "workers_from_trace",
]
