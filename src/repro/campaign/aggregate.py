"""Aggregation over campaign result stores.

Turns flat job records into the shapes the paper reports:

* :func:`summarize` — per-cell (variant x function x dim x sigma0) means of
  the §3.2 performance triple (N, R, D) via
  :func:`repro.analysis.metrics.evaluate_runs`, plus success rate, mean
  converged true value, mean underlying-function-call cost, and mean
  virtual walltime.
* :func:`compare_labels` — seed-for-seed paired comparison of two
  algorithm variants (the Figs. 3.5-3.7 protocol): log10 ratios of
  converged minima, an exact sign test, and a bootstrap CI on the median
  ratio, both from :mod:`repro.analysis.stats`.

Everything operates on plain record dicts as returned by
``StoreBackend.records()`` — never on a store's representation — so
aggregation works identically on a live campaign directory, a finished
one, an in-memory store, and every engine (JSONL, sharded, SQLite); a
migrated store reproduces its tables exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.histograms import log_ratio
from repro.analysis.metrics import evaluate_runs
from repro.analysis.stats import BootstrapCI, SignTestResult, bootstrap_median_ci, sign_test
from repro.core.state import OptimizationResult
from repro.functions import get_function

#: Termination reasons that count as converged for the success rate.
SUCCESS_REASONS = ("tolerance",)


@dataclass(frozen=True)
class CellSummary:
    """Aggregates over the completed jobs of one grid cell."""

    label: str
    algorithm: str
    function: str
    dim: int
    sigma0: float
    n_jobs: int
    success_rate: float       # fraction terminating by tolerance (eq. 2.9)
    mean_iterations: float    # N
    mean_value_error: float   # R
    mean_distance: float      # D
    mean_final_true: float    # converged value on the noise-free surface
    mean_calls: float         # underlying function evaluations per job
    mean_walltime: float      # virtual seconds per job

    def as_row(self) -> list:
        """Row form for ``format_table`` (pairs with :meth:`header`)."""
        return [
            self.label,
            self.function,
            self.dim,
            f"{self.sigma0:g}",
            self.n_jobs,
            round(self.success_rate, 3),
            round(self.mean_iterations, 1),
            round(self.mean_final_true, 4),
            round(self.mean_calls, 1),
            round(self.mean_walltime, 1),
        ]

    @staticmethod
    def header() -> list:
        """Column names matching :meth:`as_row`."""
        return [
            "variant",
            "function",
            "dim",
            "sigma0",
            "n",
            "success",
            "mean steps",
            "mean true min",
            "mean calls",
            "mean walltime",
        ]


def _cell_key(job: dict) -> Tuple[str, str, str, int, float]:
    return (
        job["label"],
        job["algorithm"],
        job["function"],
        int(job["dim"]),
        float(job["sigma0"]),
    )


def summarize(records: Iterable[dict]) -> List[CellSummary]:
    """Per-cell summaries over completed job records, in stable cell order."""
    cells: Dict[Tuple, List[dict]] = {}
    for rec in records:
        if rec.get("result") is None:
            continue
        cells.setdefault(_cell_key(rec["job"]), []).append(rec)
    summaries: List[CellSummary] = []
    for key in sorted(cells):
        label, algorithm, function, dim, sigma0 = key
        recs = cells[key]
        results = [OptimizationResult.from_dict(r["result"]) for r in recs]
        agg = evaluate_runs(results, get_function(function, dim))
        n_success = sum(1 for r in results if r.reason in SUCCESS_REASONS)
        summaries.append(
            CellSummary(
                label=label,
                algorithm=algorithm,
                function=function,
                dim=dim,
                sigma0=sigma0,
                n_jobs=len(results),
                success_rate=n_success / len(results),
                mean_iterations=agg.mean_iterations,
                mean_value_error=agg.mean_value_error,
                mean_distance=agg.mean_distance,
                mean_final_true=float(np.mean([r.best_true for r in results])),
                mean_calls=float(np.mean([r.n_underlying_calls for r in results])),
                mean_walltime=float(np.mean([r.walltime for r in results])),
            )
        )
    return summaries


@dataclass(frozen=True)
class PairedComparison:
    """Seed-for-seed comparison of variant A vs variant B (A wins < 0)."""

    label_a: str
    label_b: str
    n_pairs: int
    log_ratios: np.ndarray            # log10(min_a / min_b) per shared seed
    sign: SignTestResult              # "A ties or beats B" exact test
    median_ci: Optional[BootstrapCI]  # bootstrap CI on the median ratio

    @property
    def median(self) -> float:
        """Median log10 ratio (negative favours variant A)."""
        return float(np.median(self.log_ratios))


def _matches_cell(
    job: dict,
    function: Optional[str],
    dim: Optional[int],
    sigma0: Optional[float],
) -> bool:
    if function is not None and job["function"] != function:
        return False
    if dim is not None and int(job["dim"]) != int(dim):
        return False
    if sigma0 is not None and float(job["sigma0"]) != float(sigma0):
        return False
    return True


def paired_minima_from_records(
    records: Iterable[dict],
    label_a: str,
    label_b: str,
    function: Optional[str] = None,
    dim: Optional[int] = None,
    sigma0: Optional[float] = None,
    pooled: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Converged true minima of two variants over their shared seeds.

    Pairs on (function, dim, sigma0, seed) in natural seed order; seeds
    present for only one variant are dropped, so partially-resumed
    campaigns compare cleanly.  The paper's panels (Figs. 3.5-3.7) never
    pool ratios across conditions, so when the shared pairs span more than
    one (function, dim, sigma0) cell this raises — narrow with the
    ``function``/``dim``/``sigma0`` filters, or pass ``pooled=True`` to
    aggregate across cells deliberately.
    """
    mins: Dict[str, Dict[Tuple, float]] = {label_a: {}, label_b: {}}
    for rec in records:
        job = rec["job"]
        if job["label"] not in mins or rec.get("result") is None:
            continue
        if not _matches_cell(job, function, dim, sigma0):
            continue
        key = (job["function"], int(job["dim"]), float(job["sigma0"]), int(job["seed"]))
        mins[job["label"]][key] = max(float(rec["result"]["best_true"]), 0.0)
    shared = sorted(set(mins[label_a]) & set(mins[label_b]))
    if not shared:
        raise ValueError(
            f"no shared seeds between variants {label_a!r} and {label_b!r}"
        )
    cells = {k[:3] for k in shared}
    if len(cells) > 1 and not pooled:
        raise ValueError(
            f"pairs span {len(cells)} cells {sorted(cells)}; narrow with "
            f"function/dim/sigma0 filters or pass pooled=True"
        )
    a = np.array([mins[label_a][k] for k in shared], dtype=float)
    b = np.array([mins[label_b][k] for k in shared], dtype=float)
    return a, b


def compare_labels(
    records: Iterable[dict],
    label_a: str,
    label_b: str,
    tie_width: float = 0.5,
    rng: Optional[int] = 0,
    function: Optional[str] = None,
    dim: Optional[int] = None,
    sigma0: Optional[float] = None,
    pooled: bool = False,
) -> PairedComparison:
    """Full paired analysis of two variants from completed records."""
    mins_a, mins_b = paired_minima_from_records(
        records, label_a, label_b,
        function=function, dim=dim, sigma0=sigma0, pooled=pooled,
    )
    ratios = np.array(
        [log_ratio(a, b) for a, b in zip(mins_a, mins_b)], dtype=float
    )
    ci = bootstrap_median_ci(ratios, rng=rng) if ratios.size >= 2 else None
    return PairedComparison(
        label_a=label_a,
        label_b=label_b,
        n_pairs=int(ratios.size),
        log_ratios=ratios,
        sign=sign_test(ratios, tie_width=tie_width),
        median_ci=ci,
    )
