"""Calibrated response-surface surrogate for the water properties.

Maps ``theta = (epsilon, sigma, qH)`` to the six properties of the paper's
cost function.  Thermodynamic / dynamic properties are first-order expansions
around the "experiment-matching" reference state plus gentle curvature,
anchored so that

* published TIP4P parameters reproduce (approximately) the paper's reported
  TIP4P values: U = -41.8 kJ/mol, P = 373 atm, D = 3.29e-5 cm^2/s;
* the cost landscape's minimum lies near the paper's converged parameters.

RDF residuals are *computed*, not fitted: eq. 3.5 between the parametric RDF
family at ``theta`` and the stand-in experimental curves, so Table 3.4's
residual columns and the Fig. 3.19/3.20 curves are automatically consistent.

Sampling noise is per-property with an inherent scale ``sigma0_i`` (pressure
is by far the noisiest, as in real MD) decaying as ``1/sqrt(t)``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.water.cost import WaterCostFunction, rdf_residual
from repro.water.experiment import (
    EXPERIMENT_REFERENCE_THETA,
    EXPERIMENTAL_TARGETS,
    experimental_rdf,
)
from repro.water.rdf_model import R_GRID, rdf_curve

#: Inherent per-property noise scales at unit sampling time; reflect the
#: relative convergence difficulty the paper describes (diffusion and RDFs
#: "converge too slowly to be conveniently iterated over in a manual
#: process"; pressure fluctuates by hundreds of atm).
PROPERTY_SIGMA0: Dict[str, float] = {
    "energy": 1.5,          # kJ/mol
    "pressure": 1200.0,     # atm
    "diffusion": 0.9e-5,    # cm^2/s
    "p_goo": 0.035,
    "p_goh": 0.045,
    "p_ghh": 0.035,
}


class WaterSurrogate:
    """Noise-free property surfaces plus their sampling-noise scales."""

    def __init__(self, r_grid: Optional[np.ndarray] = None) -> None:
        self.r = r_grid if r_grid is not None else R_GRID
        self._exp_curves = {
            sp: experimental_rdf(sp, self.r) for sp in ("OO", "OH", "HH")
        }
        self._ref = EXPERIMENT_REFERENCE_THETA

    # -- property surfaces ----------------------------------------------------

    def properties(self, theta) -> Dict[str, float]:
        """Noise-free property values at ``theta = (eps, sigma, qH)``."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (3,):
            raise ValueError(f"theta must be (eps, sigma, qH), got shape {theta.shape}")
        d = theta - self._ref
        d_eps, d_sig, d_qh = d
        quad = float(d @ d)
        # internal energy: deeper well / stronger charges bind more (sized so
        # published TIP4P lands near the paper's -41.8 kJ/mol)
        energy = (
            -41.5
            - 30.0 * d_eps
            + 20.0 * d_sig
            - 60.0 * d_qh
            - 900.0 * d_eps * d_eps
            - 350.0 * d_qh * d_qh
        )
        # pressure: exquisitely sensitive to sigma at fixed density (TIP4P
        # lands near the paper's ~373 atm)
        pressure = (
            1.0
            + 9.0e3 * d_eps
            - 5.2e4 * d_sig
            - 2.4e4 * d_qh
            + 3.0e6 * d_sig * d_sig
            + 1.0e6 * d_eps * d_eps
        )
        # diffusion: bulkier molecules and stronger charges diffuse slower
        diffusion = (
            2.27e-5
            - 6.0e-4 * d_eps
            - 2.0e-3 * d_sig
            - 8.0e-4 * d_qh
            + 1.1e-2 * quad
        )
        out = {
            "energy": float(energy),
            "pressure": float(pressure),
            "diffusion": float(diffusion),
        }
        for species, key in (("OO", "p_goo"), ("OH", "p_goh"), ("HH", "p_ghh")):
            g = rdf_curve(theta, species=species, r=self.r)
            out[key] = rdf_residual(g, self._exp_curves[species], self.r)
        return out

    def sigma0(self, name: str) -> float:
        return PROPERTY_SIGMA0[name]

    def sample_properties(
        self, theta, dt: float, rng: np.random.Generator
    ) -> Dict[str, float]:
        """One block measurement over ``dt`` of sampling (noisy)."""
        if dt <= 0.0:
            raise ValueError(f"dt must be > 0, got {dt}")
        clean = self.properties(theta)
        scale = 1.0 / np.sqrt(dt)
        return {
            name: value + rng.normal(0.0, PROPERTY_SIGMA0[name]) * scale
            for name, value in clean.items()
        }


def surrogate_cost_function(
    targets: Optional[Mapping[str, Mapping[str, float]]] = None,
    surrogate: Optional[WaterSurrogate] = None,
):
    """Build ``(f, sigma0_fn, cost)`` for the optimizer machinery.

    ``f(theta)`` is the noise-free eq. 3.4 cost; ``sigma0_fn(theta)`` is the
    delta-method noise scale of the cost at unit sampling time, so wrapping
    both in a :class:`~repro.noise.stochastic.StochasticFunction` gives the
    correctly located *and* correctly sized noise for the water problem.
    """
    surr = surrogate if surrogate is not None else WaterSurrogate()
    cost = WaterCostFunction(targets if targets is not None else EXPERIMENTAL_TARGETS)

    def f(theta) -> float:
        return cost(surr.properties(theta))

    def sigma0_fn(theta) -> float:
        props = surr.properties(theta)
        sigmas = {name: surr.sigma0(name) for name in props}
        return cost.propagated_sigma(props, sigmas)

    return f, sigma0_fn, cost
