"""Experimental fitting targets (§3.5, refs. [1, 73, 74]).

Thermodynamic / dynamic targets come straight from the paper: internal
energy -41.5 kJ/mol, pressure 1 atm at the experimental density, diffusion
coefficient 2.27e-5 cm^2/s.  RDF targets are curves; the paper reduces each
to a scalar RMS residual (eq. 3.5) whose experimental target value is zero.
Our "experimental" curves are the parametric RDF family evaluated at a fixed
reference state chosen near (but not equal to) published TIP4P — so that,
as in the paper, optimized models can fit experiment *slightly better* than
TIP4P does (documented substitution for Soper 2000 data).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.water.rdf_model import R_GRID, RDFModel

#: Reference parameter state whose RDF family curves stand in for experiment.
#: Sits near the PC/PC+MN converged region, slightly off published TIP4P.
EXPERIMENT_REFERENCE_THETA = np.array([0.1480, 3.158, 0.5225])

#: Scalar experimental targets: property -> (target value, weight).
#: Weights "chosen subjectively to balance the level of error in each
#: property" (§3.5); pressure gets a small weight because its natural scale
#: (hundreds of atm of noise) dwarfs the 1 atm target.
EXPERIMENTAL_TARGETS: Dict[str, Dict[str, float]] = {
    "energy": {"target": -41.5, "weight": 1.0, "scale": 41.5},
    "pressure": {"target": 1.0, "weight": 0.3, "scale": 400.0},
    "diffusion": {"target": 2.27e-5, "weight": 0.7, "scale": 2.27e-5},
    "p_goo": {"target": 0.0, "weight": 1.0, "scale": 0.12},
    "p_goh": {"target": 0.0, "weight": 0.7, "scale": 0.15},
    "p_ghh": {"target": 0.0, "weight": 0.7, "scale": 0.12},
}


#: Amplitude of the fine-structure ripple present in the "experimental"
#: curves but absent from the model family.  Real scattering data has
#: features no point-charge model reproduces, which is why the paper's
#: *converged* RDF residuals are still ~0.03-0.11 rather than zero; this
#: term gives the reproduction the same irreducible floor.
_RIPPLE = {"OO": 0.075, "OH": 0.13, "HH": 0.045}


def _fine_structure(r: np.ndarray, species: str) -> np.ndarray:
    amp = _RIPPLE[species]
    # frequency/phase chosen so the ripple does not anticorrelate with the
    # model-family difference at published TIP4P (keeps the paper's "optimized
    # fits experiment slightly better than TIP4P" ordering)
    return amp * np.sin(3.6 * r + 2.4) * np.exp(-((r - 4.5) ** 2) / 10.0)


def experimental_goo(r: np.ndarray = R_GRID) -> np.ndarray:
    """The stand-in experimental gOO(r) curve."""
    return experimental_rdf("OO", r)


def experimental_rdf(species: str, r: np.ndarray = R_GRID) -> np.ndarray:
    """Stand-in experimental curve for any pair species (OO / OH / HH)."""
    eps, sig, qh = EXPERIMENT_REFERENCE_THETA
    base = RDFModel(eps, sig, qh, species=species).curve(r)
    g = base + np.where(base > 0.05, _fine_structure(r, species), 0.0)
    return np.maximum(g, 0.0)
