"""TIP4P water parameterization — the paper's application (§3.5).

Two evaluation paths exist for the same cost function:

* the **surrogate** (:mod:`repro.water.surrogate`): a fast, calibrated
  response-surface model of the six properties as functions of
  ``theta = (epsilon, sigma, qH)`` with sampling noise — used by the
  benchmark harness to regenerate Tables 3.4a-d and Figs. 3.19-3.20 in
  seconds;
* the **mini-MD engine** (:mod:`repro.md`): genuine NVT+NVE simulations —
  used by the examples/tests to prove the full code path (systems, phases,
  property scripts, weighted cost) runs on a real simulator.

Both feed eq. 3.4's weighted relative-squared cost via
:class:`repro.water.cost.WaterCostFunction`.
"""

from repro.water.tip4p import (
    EPS_INTERNAL_TO_KCAL,
    FINAL_MN,
    FINAL_PC,
    FINAL_PCMN,
    INITIAL_SIMPLEX_3_4A,
    PARAM_NAMES,
    TIP4P_PUBLISHED,
)
from repro.water.rdf_model import RDFModel, rdf_curve
from repro.water.experiment import EXPERIMENTAL_TARGETS, experimental_goo
from repro.water.cost import WaterCostFunction, rdf_residual
from repro.water.surrogate import WaterSurrogate, surrogate_cost_function
from repro.water.parameterize import parameterize_water, water_systems
from repro.water.property_pool import (
    PropertyEvaluation,
    PropertySamplingPool,
    parameterize_water_property_level,
)

__all__ = [
    "EPS_INTERNAL_TO_KCAL",
    "EXPERIMENTAL_TARGETS",
    "FINAL_MN",
    "FINAL_PC",
    "FINAL_PCMN",
    "INITIAL_SIMPLEX_3_4A",
    "PARAM_NAMES",
    "PropertyEvaluation",
    "PropertySamplingPool",
    "RDFModel",
    "TIP4P_PUBLISHED",
    "WaterCostFunction",
    "WaterSurrogate",
    "experimental_goo",
    "parameterize_water",
    "parameterize_water_property_level",
    "rdf_curve",
    "rdf_residual",
    "surrogate_cost_function",
    "water_systems",
]
