"""The weighted cost function (eqs. 1.3 / 3.4) and RDF reduction (eq. 3.5).

    g(theta) = sum_i w_i^2 (p_i(theta) - p0_i)^2 / s_i^2

The paper writes the denominator as ``(p0_i)^2`` (relative error), but notes
that the RDF residual targets are exactly zero — where a relative error is
undefined — so each property carries an explicit error *scale* ``s_i``
(equal to ``|p0_i|`` when that is sensible, a subjectively chosen scale
otherwise), which is also how "weights chosen subjectively to balance the
level of error in each property" behaves in practice.  Only relative weight
magnitudes matter (§4.2, "Property Weights").
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np


def rdf_residual(
    g_model: np.ndarray,
    g_ref: np.ndarray,
    r: np.ndarray,
    r_min: float = 2.0,
    r_max: float = 8.0,
) -> float:
    """eq. 3.5: RMS difference between two RDF curves over [r_min, r_max].

        p_g = [ 1/(r_max - r_min) * integral (g - g*)^2 dr ]^(1/2)
    """
    g_model = np.asarray(g_model, dtype=float)
    g_ref = np.asarray(g_ref, dtype=float)
    r = np.asarray(r, dtype=float)
    if g_model.shape != r.shape or g_ref.shape != r.shape:
        raise ValueError("curves and grid must share one shape")
    if not (r_max > r_min):
        raise ValueError(f"need r_max > r_min, got [{r_min}, {r_max}]")
    mask = (r >= r_min) & (r <= r_max)
    if mask.sum() < 2:
        raise ValueError("grid has fewer than 2 points in [r_min, r_max]")
    diff2 = (g_model[mask] - g_ref[mask]) ** 2
    integral = np.trapezoid(diff2, r[mask])
    return float(math.sqrt(integral / (r_max - r_min)))


class WaterCostFunction:
    """eq. 3.4 with per-property targets, weights and scales.

    Parameters
    ----------
    targets:
        ``{property: {"target": t, "weight": w, "scale": s}}``; ``scale``
        defaults to ``|target|`` (must then be nonzero).
    """

    def __init__(self, targets: Mapping[str, Mapping[str, float]]) -> None:
        if not targets:
            raise ValueError("need at least one property target")
        self._spec: Dict[str, Dict[str, float]] = {}
        for name, spec in targets.items():
            target = float(spec["target"])
            weight = float(spec.get("weight", 1.0))
            scale = spec.get("scale")
            if scale is None:
                if target == 0.0:
                    raise ValueError(
                        f"property {name!r}: zero target requires an explicit scale"
                    )
                scale = abs(target)
            scale = float(scale)
            if scale <= 0.0:
                raise ValueError(f"property {name!r}: scale must be > 0")
            if weight < 0.0:
                raise ValueError(f"property {name!r}: weight must be >= 0")
            self._spec[name] = {"target": target, "weight": weight, "scale": scale}

    @property
    def properties(self) -> tuple:
        return tuple(self._spec)

    def residuals(self, properties: Mapping[str, float]) -> Dict[str, float]:
        """Per-property weighted squared residual contributions."""
        out: Dict[str, float] = {}
        for name, spec in self._spec.items():
            if name not in properties:
                raise KeyError(f"property {name!r} missing from measurement")
            p = float(properties[name])
            out[name] = (
                spec["weight"] ** 2 * (p - spec["target"]) ** 2 / spec["scale"] ** 2
            )
        return out

    def __call__(self, properties: Mapping[str, float]) -> float:
        """Total cost g(theta) for one property measurement."""
        return float(sum(self.residuals(properties).values()))

    def gradient_wrt_properties(
        self, properties: Mapping[str, float]
    ) -> Dict[str, float]:
        """d g / d p_i — used for delta-method noise propagation."""
        out: Dict[str, float] = {}
        for name, spec in self._spec.items():
            p = float(properties[name])
            out[name] = (
                2.0 * spec["weight"] ** 2 * (p - spec["target"]) / spec["scale"] ** 2
            )
        return out

    def propagated_sigma(
        self,
        properties: Mapping[str, float],
        property_sigmas: Mapping[str, float],
        include_floor: bool = True,
    ) -> float:
        """Noise scale of the cost from independent property noise.

        First order (delta method): ``sum_i (dg/dp_i)^2 sigma_i^2``.  Near
        the optimum the gradient vanishes but the cost is a sum of squared
        noisy residuals, so the second-order (chi-square) variance
        ``2 sum_i (w_i^2 sigma_i^2 / s_i^2)^2`` provides the floor that keeps
        the late-stage optimization genuinely noise-limited (the regime the
        paper's algorithms are built for).
        """
        grad = self.gradient_wrt_properties(properties)
        total = 0.0
        for name, dg in grad.items():
            s = float(property_sigmas.get(name, 0.0))
            total += (dg * s) ** 2
        if include_floor:
            floor = 0.0
            for name, spec in self._spec.items():
                s = float(property_sigmas.get(name, 0.0))
                a = spec["weight"] ** 2 / spec["scale"] ** 2
                floor += (a * s * s) ** 2
            total += 2.0 * floor
        return math.sqrt(total)
