"""End-to-end water reparameterization pipeline (§3.5).

Two entry points:

* :func:`parameterize_water` — the fast path used by benchmarks: wraps the
  surrogate cost in a :class:`~repro.noise.stochastic.StochasticFunction`
  (noise located and sized by delta-method propagation of the per-property
  sampling noise) and runs one of the paper's optimizers from the Table 3.4a
  initial simplex.
* :func:`water_systems` — the faithful-architecture path: builds the ``Ns``
  per-property *systems* that a :class:`~repro.mw.vertex_server.VertexServer`
  runs as clients, with the eq. 3.4 cost applied by the server — the full
  master/worker/server/client stack of Fig. 3.2.  Systems can sample from
  the surrogate (fast) or run the real mini-MD engine (slow; used by
  examples).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.driver import make_optimizer
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.noise.stochastic import StochasticFunction
from repro.water.cost import WaterCostFunction, rdf_residual
from repro.water.experiment import EXPERIMENTAL_TARGETS, experimental_rdf
from repro.water.surrogate import WaterSurrogate, surrogate_cost_function
from repro.water.tip4p import INITIAL_SIMPLEX_3_4A


def parameterize_water(
    algorithm: str = "MN",
    seed: Optional[int] = 0,
    vertices: Optional[np.ndarray] = None,
    tau: float = 1e-4,
    walltime: float = 2e5,
    max_steps: int = 500,
    noise_scale: float = 1.0,
    warmup: float = 1.0,
    **options,
) -> OptimizationResult:
    """Reparameterize TIP4P on the surrogate with one of the paper's methods.

    ``noise_scale`` multiplies the propagated cost noise (1.0 = the
    calibrated property noise levels; 0.0 = noiseless landscape).
    Returns the optimizer result; ``result.best_theta`` is
    ``(epsilon, sigma, qH)``.
    """
    f, sigma0_fn, _cost = surrogate_cost_function()
    if noise_scale < 0.0:
        raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
    sigma0: object
    if noise_scale == 0.0:
        sigma0 = 0.0
    else:
        sigma0 = lambda th: noise_scale * sigma0_fn(th)  # noqa: E731
    func = StochasticFunction(f, sigma0=sigma0, rng=seed, sigma_known=True)
    verts = (
        np.asarray(vertices, dtype=float)
        if vertices is not None
        else INITIAL_SIMPLEX_3_4A[:4].copy()
    )
    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)
    opt = make_optimizer(
        algorithm, func, verts, warmup=warmup, termination=termination, **options
    )
    return opt.run()


def water_systems(
    source: str = "surrogate",
    md_protocol=None,
    surrogate: Optional[WaterSurrogate] = None,
) -> List[Callable]:
    """The ``Ns = 6`` per-property systems for a vertex server.

    Each system measures one property: ``system(theta, dt, rng) -> {name:
    value}``.  With ``source="surrogate"`` the measurement is a noisy draw
    from the calibrated response surfaces; with ``source="md"`` the
    thermo/dynamic systems run the mini-MD engine (RDF residual systems
    reduce the measured curves against the stand-in experimental data).
    """
    if source == "surrogate":
        surr = surrogate if surrogate is not None else WaterSurrogate()

        def make_system(name: str) -> Callable:
            def system(theta, dt, rng) -> Dict[str, float]:
                clean = surr.properties(theta)[name]
                noise = rng.normal(0.0, surr.sigma0(name)) / np.sqrt(dt)
                return {name: clean + noise}

            system.__name__ = f"surrogate_{name}"
            return system

        return [
            make_system(name)
            for name in ("energy", "pressure", "diffusion", "p_goo", "p_goh", "p_ghh")
        ]

    if source == "md":
        from repro.md.forcefield import WaterParameters
        from repro.md.simulation import SimulationProtocol, run_water_simulation

        protocol = md_protocol if md_protocol is not None else SimulationProtocol(
            n_molecules=8, n_equilibration=80, n_production=120, sample_every=10
        )

        def md_thermo(theta, dt, rng) -> Dict[str, float]:
            params = WaterParameters.from_vector(theta)
            props = run_water_simulation(params, protocol, rng=rng)
            return {
                "energy": float(props["energy"]),
                "pressure": float(props["pressure"]),
                "diffusion": float(props["diffusion"]),
            }

        def md_structure(theta, dt, rng) -> Dict[str, float]:
            params = WaterParameters.from_vector(theta)
            props = run_water_simulation(params, protocol, rng=rng)
            r = props["r"]
            out: Dict[str, float] = {}
            for species, g_key, p_key in (
                ("OO", "goo", "p_goo"),
                ("OH", "goh", "p_goh"),
                ("HH", "ghh", "p_ghh"),
            ):
                ref = experimental_rdf(species, r)
                r_hi = min(8.0, float(r[-1]))
                out[p_key] = rdf_residual(
                    props[g_key], ref, r, r_min=2.0, r_max=r_hi
                )
            return out

        return [md_thermo, md_structure]

    raise ValueError(f"source must be 'surrogate' or 'md', got {source!r}")


def water_cost() -> WaterCostFunction:
    """The eq. 3.4 cost with the paper's experimental targets."""
    return WaterCostFunction(EXPERIMENTAL_TARGETS)
