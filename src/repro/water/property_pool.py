"""Property-level evaluation pool for the water application.

The surrogate front door (:func:`~repro.water.surrogate.surrogate_cost_function`)
wraps the *cost* in a single noise scale.  The real system is richer: each
vertex's workers sample the six properties independently, the master sees the
cost of the current property *means*, and the uncertainty of that cost follows
from the per-property standard errors.  This module implements that faithful
model as a drop-in pool for the optimizers:

* :class:`PropertyEvaluation` — a vertex evaluation whose ``estimate`` is the
  eq. 3.4 cost of the precision-weighted property means, and whose ``sem``
  comes from delta-method propagation **at the current means** (plus the
  chi-square floor near the optimum);
* :class:`PropertySamplingPool` — the ``SamplingPool``-protocol container
  that advances all active vertices by sampling every property for ``dt``.

Because the cost is a nonlinear function of noisy means, its estimator is
biased at finite t (E[cost(means)] = cost(true) + sum a_i sigma_i^2/t); this
is exactly the bias a real squared-residual objective has, and it decays as
1/t — another reason the late stages need long sampling.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.noise.clock import VirtualClock
from repro.noise.evaluation import VertexEvaluation
from repro.water.cost import WaterCostFunction
from repro.water.experiment import EXPERIMENTAL_TARGETS
from repro.water.surrogate import WaterSurrogate


class PropertyEvaluation(VertexEvaluation):
    """Vertex evaluation backed by per-property accumulators.

    ``estimate`` and ``sem`` are *derived* (read-only) views over the
    property means; the generic merge API is disabled because sampling goes
    through :meth:`merge_property_block`.
    """

    __slots__ = ("cost", "props", "prop_sigma0")

    def __init__(
        self,
        theta,
        cost: WaterCostFunction,
        prop_sigma0: Dict[str, float],
        label: str = "",
    ) -> None:
        super().__init__(theta, sigma0=None, sigma0_guess=1.0, label=label)
        self.cost = cost
        self.prop_sigma0 = dict(prop_sigma0)
        # per-property running means: time-weighted, variance sigma0_i^2/t
        self.props: Dict[str, VertexEvaluation] = {
            name: VertexEvaluation(theta, sigma0=s0, label=f"{label}:{name}")
            for name, s0 in self.prop_sigma0.items()
        }

    # -- sampling ----------------------------------------------------------

    def merge_property_block(self, dt: float, samples: Dict[str, float]) -> None:
        """Merge one block of property measurements taken over ``dt``."""
        for name, ev in self.props.items():
            if name not in samples:
                raise KeyError(f"block is missing property {name!r}")
            ev.merge_block(dt, samples[name])
        self.time += dt
        self.n_blocks += 1

    def merge_block(self, dt: float, sample: float) -> None:  # pragma: no cover
        raise TypeError(
            "PropertyEvaluation samples properties, not cost blocks; "
            "use merge_property_block"
        )

    # -- derived views -----------------------------------------------------------

    def property_means(self) -> Dict[str, float]:
        return {name: ev.estimate for name, ev in self.props.items()}

    def property_sems(self) -> Dict[str, float]:
        return {name: ev.sem for name, ev in self.props.items()}

    @property
    def estimate(self) -> float:  # type: ignore[override]
        if self.time <= 0.0:
            return math.nan
        return self.cost(self.property_means())

    @estimate.setter
    def estimate(self, value) -> None:
        # the base-class __init__ assigns nan before our fields exist;
        # ignore writes (the estimate is always derived)
        return

    @property
    def sem(self) -> float:  # type: ignore[override]
        if self.time <= 0.0:
            return math.inf
        return self.cost.propagated_sigma(
            self.property_means(), self.property_sems(), include_floor=True
        )

    @property
    def variance(self) -> float:  # type: ignore[override]
        s = self.sem
        return s * s if math.isfinite(s) else math.inf


class PropertySamplingPool:
    """``SamplingPool``-protocol pool sampling water properties per vertex.

    Parameters
    ----------
    surrogate:
        Property source (noise-free surfaces + per-property sigma0).  Any
        object with ``properties(theta)`` and ``sigma0(name)`` works, so an
        MD-backed source can be swapped in.
    cost:
        eq. 3.4 cost; defaults to the paper's experimental targets.
    warmup:
        Initial sampling time per activation.
    rng:
        Noise stream.
    """

    def __init__(
        self,
        surrogate: Optional[WaterSurrogate] = None,
        cost: Optional[WaterCostFunction] = None,
        warmup: float = 1.0,
        rng=None,
    ) -> None:
        if not (warmup > 0.0):
            raise ValueError(f"warmup must be > 0, got {warmup!r}")
        self.surrogate = surrogate if surrogate is not None else WaterSurrogate()
        self.cost = cost if cost is not None else WaterCostFunction(EXPERIMENTAL_TARGETS)
        self.warmup = float(warmup)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.clock = VirtualClock()
        self.active: List[PropertyEvaluation] = []
        self.n_activations = 0
        self._sigma0 = {name: self.surrogate.sigma0(name) for name in self.cost.properties}
        self.func = _PropertyFunctionView(self)

    # -- SamplingPool protocol ------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def activate(self, theta, label: str = "") -> PropertyEvaluation:
        ev = PropertyEvaluation(theta, self.cost, self._sigma0, label=label)
        self.active.append(ev)
        self.n_activations += 1
        self.advance(self.warmup)
        return ev

    def adopt(self, ev: PropertyEvaluation) -> PropertyEvaluation:
        if ev not in self.active:
            self.active.append(ev)
        return ev

    def deactivate(self, ev: PropertyEvaluation) -> None:
        try:
            self.active.remove(ev)
        except ValueError:
            raise ValueError("evaluation is not active in this pool") from None

    def advance(self, dt: float, targets=None) -> float:
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        for ev in self.active:
            clean = self.surrogate.properties(ev.theta)
            scale = 1.0 / math.sqrt(dt)
            block = {
                name: clean[name] + self.rng.normal(0.0, self._sigma0[name]) * scale
                for name in self._sigma0
            }
            ev.merge_property_block(dt, block)
            self.func.n_underlying_calls += 1
            self.func.total_sampling_time += dt
        return self.clock.advance(dt)

    def __len__(self) -> int:
        return len(self.active)

    def __contains__(self, ev) -> bool:
        return ev in self.active


class _PropertyFunctionView:
    """StochasticFunction-shaped adapter for the optimizer plumbing."""

    def __init__(self, pool: PropertySamplingPool) -> None:
        self._pool = pool
        self.n_underlying_calls = 0
        self.total_sampling_time = 0.0

    @property
    def clock(self) -> VirtualClock:
        return self._pool.clock

    def true_value(self, theta) -> float:
        return self._pool.cost(self._pool.surrogate.properties(np.asarray(theta, dtype=float)))


def parameterize_water_property_level(
    algorithm: str = "PC",
    seed: Optional[int] = 0,
    vertices=None,
    tau: float = 1e-3,
    walltime: float = 3e5,
    max_steps: int = 300,
    **options,
):
    """Water parameterization on the faithful property-level pool."""
    from repro.core.driver import make_optimizer
    from repro.core.termination import default_termination
    from repro.water.tip4p import INITIAL_SIMPLEX_3_4A

    pool = PropertySamplingPool(rng=seed)
    verts = (
        np.asarray(vertices, dtype=float)
        if vertices is not None
        else INITIAL_SIMPLEX_3_4A[:4].copy()
    )
    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)
    opt = make_optimizer(
        algorithm, pool.func, verts, pool=pool, termination=termination, **options
    )
    return opt.run()
