"""Parametric radial-distribution-function family for liquid water.

Figures 3.19-3.20 plot gOO(r) for various parameter sets against the
experimental curve (Soper 2000).  Without the authors' trajectories we model
g(r) as the standard liquid-structure shape — an excluded core, a sharp
first peak, a first minimum and a damped second shell:

    g(r) = S(r) * [ 1 + a1 G(r; r1, w1) + a2 G(r; r2, w2) + a3 G(r; r3, w3) ]

with Gaussians G and a smooth core switch S.  The peak positions scale with
the LJ size ``sigma`` (first O-O shell near the LJ contact), and the degree
of structuring (peak height, depth of the first minimum) grows with the
electrostatics ``qH`` and shrinks with thermal smearing — physically the
right sensitivities for the qualitative claims the figures make.  The
"experimental" reference curve is this family evaluated at a fixed reference
state (documented substitution, DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Default radial grid used by the figures (A).
R_GRID = np.linspace(0.0, 12.0, 241)


def _gaussian(r: np.ndarray, center: float, width: float) -> np.ndarray:
    return np.exp(-0.5 * ((r - center) / width) ** 2)


@dataclass(frozen=True)
class RDFModel:
    """gOO(r) generator for a water model with parameters (eps, sigma, qH).

    ``species`` picks the pair type: OO (default), OH or HH; the latter two
    shift the first shell to the hydrogen-bond geometry distances.
    """

    epsilon: float
    sigma: float
    q_h: float
    species: str = "OO"

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if self.species not in ("OO", "OH", "HH"):
            raise ValueError(f"species must be OO/OH/HH, got {self.species!r}")

    # -- structural parameters as functions of theta ------------------------

    def first_peak(self) -> Tuple[float, float, float]:
        """(position, height, width) of the first coordination peak."""
        # O-O contact near the LJ size; H-bond geometry offsets for OH/HH
        if self.species == "OO":
            r1 = 0.8757 * self.sigma
            base_height = 1.95
        elif self.species == "OH":
            r1 = 0.8757 * self.sigma - 0.95
            base_height = 1.35
        else:  # HH
            r1 = 0.8757 * self.sigma - 0.45
            base_height = 1.25
        # stronger charges structure the liquid; deeper LJ well compacts it
        struct = (self.q_h / 0.52) ** 2
        depth = self.epsilon / 0.155
        height = 1.0 + base_height * (0.55 + 0.45 * struct) * (0.8 + 0.2 * depth)
        width = 0.18 + 0.10 / max(struct, 0.3)
        return r1, height, width

    def curve(self, r: np.ndarray = R_GRID) -> np.ndarray:
        """Evaluate g(r) on the grid."""
        r = np.asarray(r, dtype=float)
        r1, h1, w1 = self.first_peak()
        struct = (self.q_h / 0.52) ** 2
        # first minimum and second shell track the first peak position
        rmin1 = 1.22 * r1
        r2 = 1.63 * r1
        a1 = h1 - 1.0
        a_min = 0.55 * min(struct, 1.4)      # depth of first minimum
        a2 = 0.30 * min(struct, 1.4)         # second-shell height
        g = (
            1.0
            + a1 * _gaussian(r, r1, w1)
            - a_min * _gaussian(r, rmin1, 0.45)
            + a2 * _gaussian(r, r2, 0.55)
        )
        # excluded core: smooth switch-on just below the first peak
        core = 1.0 / (1.0 + np.exp(-(r - (r1 - 0.32)) / 0.075))
        g = g * core
        return np.maximum(g, 0.0)


def rdf_curve(theta, species: str = "OO", r: np.ndarray = R_GRID) -> np.ndarray:
    """Convenience: g(r) for an optimization vector ``(eps, sigma, qH)``."""
    theta = np.asarray(theta, dtype=float)
    model = RDFModel(
        epsilon=float(theta[0]),
        sigma=float(theta[1]),
        q_h=float(theta[2]),
        species=species,
    )
    return model.curve(r)
