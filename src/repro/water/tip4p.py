"""TIP4P parameter sets from the paper (Tables 3.4a-d, §3.5).

The optimization vector is ``theta = (epsilon [kcal/mol], sigma [A],
qH [e])``.  The dissertation's Table 3.4 prints epsilon in the MD code's
internal units (amu A^2 / dfs^2); the accompanying text gives the converged
values in kcal/mol (MN: eps = 0.1514 with internal 6.345e-7), fixing the
conversion factor used here to express the printed initial simplex in
kcal/mol.
"""

from __future__ import annotations

import numpy as np

#: kcal/mol per (amu A^2 / dfs^2) — from the text/table pair
#: eps_MN = 0.1514 kcal/mol == 6.345e-7 internal.
EPS_INTERNAL_TO_KCAL = 0.1514 / 6.345e-7

PARAM_NAMES = ("epsilon", "sigma", "q_h")

#: Published TIP4P (Jorgensen et al. 1983), as quoted in §3.5:
#: "eps = .1550 kcal/mol, sigma = 3.154 A, qH = 0.520 |e|".
TIP4P_PUBLISHED = np.array([0.1550, 3.154, 0.520])

#: Table 3.4a — the user-supplied initial simplex (d+3 = 6 rows for d = 3:
#: four vertices plus two trial vertices), "parameter values that gave poor
#: and unphysical results".  Epsilon converted from internal units.
_INITIAL_INTERNAL = np.array(
    [
        [7.1000e-7, 3.00, 0.54],
        [6.4931e-7, 3.40, 0.45],
        [5.4913e-7, 3.25, 0.52],
        [6.8000e-7, 2.80, 0.60],
        [5.4913e-7, 3.25, 0.60],
        [6.8000e-7, 2.90, 0.65],
    ]
)
INITIAL_SIMPLEX_3_4A = _INITIAL_INTERNAL.copy()
INITIAL_SIMPLEX_3_4A[:, 0] *= EPS_INTERNAL_TO_KCAL

#: Converged parameters (text of §3.5).
FINAL_MN = np.array([0.1514, 3.150, 0.520])      # 42 simplex steps
FINAL_PC = np.array([0.1470, 3.160, 0.523])      # 56 simplex steps
FINAL_PCMN = np.array([0.1470, 3.162, 0.522])    # > 62 simplex steps

#: Property values reported in the properties table (Table 3.4, second part)
#: and §3.5 text: keys are model name -> {property: value}.
PAPER_PROPERTIES = {
    "MN": {"energy": -41.69, "pressure": 212.1, "diffusion": 3.0e-5,
           "p_ghh": 0.0284, "p_goh": 0.1015, "p_goo": 0.059},
    "PC": {"energy": -41.68, "pressure": 359.4, "diffusion": 3.1e-5,
           "p_ghh": 0.031, "p_goh": 0.102, "p_goo": 0.06},
    "PC+MN": {"energy": -41.80, "pressure": 266.8, "diffusion": 3.01e-5,
              "p_ghh": 0.05, "p_goh": 0.11, "p_goo": 0.09},
    "TIP4P": {"energy": -41.80, "pressure": 373.0, "diffusion": 3.29e-5},
    "EXP": {"energy": -41.50, "pressure": 1.0, "diffusion": 2.27e-5},
}


def vertices_for_dim() -> np.ndarray:
    """The d+1 = 4 simplex vertices from Table 3.4a (first four rows)."""
    return INITIAL_SIMPLEX_3_4A[:4].copy()
