"""$OPTROOT directory structure (paper §4.2, Figs. 4.1-4.2).

The root is supplied at runtime; everything the optimization uses lives
under it.  "Any two simultaneous instances of the optimization program
should be run with distinct, non-overlapping directory trees."  Every
subdirectory of ``systems/`` that does not match ``par[0-9]*`` is a system;
``par<N>`` directories are created by the program itself, one per parameter
set visited, to hold the simulations run at that point.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List

#: Reserved name pattern: directories holding per-parameter-set runs.
PAR_PATTERN = re.compile(r"^par[0-9]*$")


class OptRoot:
    """Handle to (and builder of) an $OPTROOT tree."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, root) -> "OptRoot":
        """Create the skeleton: systems/ and properties/ directories."""
        opt = cls(root)
        opt.systems_dir.mkdir(parents=True, exist_ok=True)
        opt.properties_dir.mkdir(parents=True, exist_ok=True)
        return opt

    @property
    def systems_dir(self) -> Path:
        return self.root / "systems"

    @property
    def properties_dir(self) -> Path:
        return self.root / "properties"

    @property
    def input_file(self) -> Path:
        return self.root / "input"

    def add_system(self, name: str, run_script: str = "#!/bin/sh\nexit 0\n") -> Path:
        """Create ``systems/<name>/`` with an executable ``run.sh``.

        System names must be valid single path components and must not match
        the reserved ``par[0-9]*`` pattern (§4.2).
        """
        if not name or "/" in name:
            raise ValueError(f"invalid system name {name!r}")
        if PAR_PATTERN.match(name):
            raise ValueError(
                f"system name {name!r} matches the reserved pattern par[0-9]*"
            )
        d = self.systems_dir / name
        d.mkdir(parents=True, exist_ok=True)
        script = d / "run.sh"
        script.write_text(run_script)
        script.chmod(0o755)
        return d

    def add_phase(self, system: str, phase: str, run_script: str) -> Path:
        """Create a nested phase directory with its own run.sh."""
        if PAR_PATTERN.match(phase):
            raise ValueError(f"phase name {phase!r} matches par[0-9]*")
        d = self.systems_dir / system / phase
        d.mkdir(parents=True, exist_ok=True)
        script = d / "run.sh"
        script.write_text(run_script)
        script.chmod(0o755)
        return d

    # -- scanning -----------------------------------------------------------

    def systems(self) -> List[str]:
        """System names: subdirectories of systems/ not matching par[0-9]*."""
        if not self.systems_dir.is_dir():
            raise FileNotFoundError(f"{self.systems_dir} does not exist")
        return sorted(
            p.name
            for p in self.systems_dir.iterdir()
            if p.is_dir() and not PAR_PATTERN.match(p.name)
        )

    def phases(self, system: str) -> List[Path]:
        """Phase run scripts for a system, outermost first (nested order).

        Phase 1 is ``systems/<name>/run.sh``; each non-reserved subdirectory
        containing a run.sh is a further phase, recursively.
        """
        base = self.systems_dir / system
        if not base.is_dir():
            raise FileNotFoundError(f"system {system!r} not found")
        scripts: List[Path] = []

        def walk(d: Path) -> None:
            script = d / "run.sh"
            if script.is_file():
                scripts.append(script)
            for sub in sorted(p for p in d.iterdir() if p.is_dir()):
                if not PAR_PATTERN.match(sub.name):
                    walk(sub)

        walk(base)
        if not scripts:
            raise FileNotFoundError(f"system {system!r} has no run.sh")
        return scripts

    def n_processors_required(self) -> int:
        """§4.2: "one processor for each run.sh script found"."""
        return sum(len(self.phases(s)) for s in self.systems())

    def par_dir(self, index: int) -> Path:
        """Directory for the runs at parameter-set ``index`` (created)."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        d = self.systems_dir / f"par{index}"
        d.mkdir(parents=True, exist_ok=True)
        return d
