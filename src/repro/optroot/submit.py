"""Job submission: from an $OPTROOT tree to a PBS allocation (§4.2).

"When the user scripts are placed in appropriate directories, the job is
initiated by submitting a portable batch script (PBS) to the head node ...
The number of processors required for a system is calculated by the software
using a wrapper script, which scans the directory structure and requests one
processor for each run.sh script found."  On grant, PBS drops the
machinefile into $OPTROOT and the program performs its own role assignment
(master / workers / client-server blocks) from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.cluster.allocation import JobAllocation, ProcessorAllocation, allocate_processors
from repro.cluster.scheduler import JobRequest, PBSScheduler, RunningJob
from repro.optroot.layout import OptRoot


@dataclass
class SubmittedOptimization:
    """A granted optimization job: machinefile + role assignment."""

    job: RunningJob
    machinefile_path: Path
    allocation: JobAllocation


def processors_for_tree(optroot: OptRoot, dim: int) -> ProcessorAllocation:
    """Processor request implied by the tree: Ns = number of run.sh scripts."""
    ns = optroot.n_processors_required()
    if ns < 1:
        raise ValueError("the tree defines no systems/phases (no run.sh found)")
    return ProcessorAllocation.for_problem(dim, ns)


def submit_optimization(
    optroot: OptRoot,
    scheduler: PBSScheduler,
    dim: int,
    name: str = "optimization",
) -> Optional[SubmittedOptimization]:
    """Request the tree's processors; on grant, write the machinefile and
    assign roles in the paper's order.

    Returns ``None`` when the job queued (cluster busy) — re-drive via
    ``scheduler.release`` of finished jobs, as PBS does.
    """
    counts = processors_for_tree(optroot, dim)
    job = scheduler.submit(JobRequest(n_procs=counts.total, name=name))
    if job is None:
        return None
    # "PBS makes a copy of the machinefile ($PBS_NODEFILE) in the $OPTROOT
    # directory"
    machinefile_path = optroot.root / "machinefile"
    machinefile_path.write_text("\n".join(job.entries) + "\n")
    allocation = allocate_processors(job.entries, dim, counts.ns)
    return SubmittedOptimization(
        job=job, machinefile_path=machinefile_path, allocation=allocation
    )
