"""$OPTROOT — the directory-driven automation layer (paper chapter 4).

All user-specified inputs live in a directory tree: ``systems/<name>/``
holds each system's starting configuration and phase scripts (``run.sh``,
with nested subdirectories for later phases), ``properties/prop*.val`` and
``prop*.wgt`` hold targets and weights, and an input file names the ``d``
parameters and supplies the initial simplex rows.  Subdirectories matching
the regular expression ``par[0-9]*`` are reserved and skipped when scanning.
"""

from repro.optroot.layout import OptRoot, PAR_PATTERN
from repro.optroot.config import OptimizationInput, load_input, load_property_specs
from repro.optroot.runner import PhaseRunner, run_system_phases
from repro.optroot.submit import (
    SubmittedOptimization,
    processors_for_tree,
    submit_optimization,
)

__all__ = [
    "OptRoot",
    "OptimizationInput",
    "PAR_PATTERN",
    "PhaseRunner",
    "SubmittedOptimization",
    "load_input",
    "load_property_specs",
    "processors_for_tree",
    "run_system_phases",
    "submit_optimization",
]
