"""User input parsing: the initial simplex file and property targets (§4.2).

Input file format: "the first row in the input file provides the name of d
parameters (separated by white space) to be optimized and the following
d+3 rows specify the coordinates (parameters) corresponding to d+1 vertices
of simplex" — i.e. the d+1 simplex vertices plus the two trial-vertex seeds.
We accept d+1 or d+3 rows (the trial rows are optional: trial vertices are
derived by the algorithm anyway).

Property files: ``properties/prop<NAME>.val`` holds the target value on its
first line; ``prop<NAME>.wgt`` holds the weight (default 1.0);
``prop<NAME>.scl`` optionally holds the error scale (required when the
target is zero, e.g. RDF residuals).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.optroot.layout import OptRoot


@dataclass(frozen=True)
class OptimizationInput:
    """Parsed input file: parameter names + initial vertices."""

    names: Tuple[str, ...]
    vertices: np.ndarray  # (n_rows, d); first d+1 rows are the simplex

    @property
    def dim(self) -> int:
        return len(self.names)

    def simplex_vertices(self) -> np.ndarray:
        """The d+1 rows that initialize the simplex."""
        return self.vertices[: self.dim + 1].copy()


def write_input(optroot: OptRoot, names, vertices) -> Path:
    """Write the input file in the paper's format."""
    vertices = np.asarray(vertices, dtype=float)
    names = list(names)
    if vertices.ndim != 2 or vertices.shape[1] != len(names):
        raise ValueError(
            f"vertices must be (rows, {len(names)}), got {vertices.shape}"
        )
    lines = [" ".join(names)]
    for row in vertices:
        lines.append(" ".join(f"{x:.10g}" for x in row))
    optroot.input_file.write_text("\n".join(lines) + "\n")
    return optroot.input_file


def load_input(optroot: OptRoot) -> OptimizationInput:
    """Parse the input file; validates row count (d+1 or d+3 rows)."""
    path = optroot.input_file
    if not path.is_file():
        raise FileNotFoundError(f"input file {path} not found")
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    if len(lines) < 2:
        raise ValueError("input file needs a header row plus vertex rows")
    names = tuple(lines[0].split())
    d = len(names)
    rows = []
    for ln in lines[1:]:
        values = [float(tok) for tok in ln.split()]
        if len(values) != d:
            raise ValueError(
                f"vertex row has {len(values)} values; expected {d}: {ln!r}"
            )
        rows.append(values)
    if len(rows) not in (d + 1, d + 3):
        raise ValueError(
            f"expected {d + 1} (or {d + 3}) vertex rows for d={d}, got {len(rows)}"
        )
    return OptimizationInput(names=names, vertices=np.array(rows))


def write_property_spec(
    optroot: OptRoot,
    name: str,
    target: float,
    weight: float = 1.0,
    scale: float | None = None,
) -> None:
    """Write prop<NAME>.val / .wgt / (.scl) files."""
    d = optroot.properties_dir
    d.mkdir(parents=True, exist_ok=True)
    (d / f"prop{name}.val").write_text(f"{target:.10g}\n")
    (d / f"prop{name}.wgt").write_text(f"{weight:.10g}\n")
    if scale is not None:
        (d / f"prop{name}.scl").write_text(f"{scale:.10g}\n")


def load_property_specs(optroot: OptRoot) -> Dict[str, Dict[str, float]]:
    """Read every prop*.val (+ optional .wgt/.scl) into cost-function specs."""
    d = optroot.properties_dir
    if not d.is_dir():
        raise FileNotFoundError(f"{d} does not exist")
    specs: Dict[str, Dict[str, float]] = {}
    for val_file in sorted(d.glob("prop*.val")):
        name = val_file.stem[len("prop"):]
        if not name:
            raise ValueError(f"property file {val_file.name} has an empty name")
        spec: Dict[str, float] = {"target": _read_scalar(val_file)}
        wgt = d / f"prop{name}.wgt"
        if wgt.is_file():
            spec["weight"] = _read_scalar(wgt)
        scl = d / f"prop{name}.scl"
        if scl.is_file():
            spec["scale"] = _read_scalar(scl)
        specs[name] = spec
    if not specs:
        raise ValueError(f"no prop*.val files under {d}")
    return specs


def _read_scalar(path: Path) -> float:
    """First line of the file as a float (the paper's .val format)."""
    first = path.read_text().splitlines()[0].strip()
    try:
        return float(first)
    except ValueError:
        raise ValueError(f"{path} first line is not a number: {first!r}") from None
