"""Phase execution: run a system's run.sh scripts in order (§4.2).

"The second phase of simulation will be initiated after completion of the
first phase ... the wrapper script should not exit until the calculations
are finished" — phases run sequentially, in the foreground, each in its own
working directory, with the parameter values exported through the
environment (``OPT_PARAM_<NAME>``) and ``OPTROOT`` pointing at the tree.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.optroot.layout import OptRoot


@dataclass
class PhaseResult:
    """Outcome of one run.sh invocation."""

    script: Path
    returncode: int
    stdout: str
    stderr: str

    @property
    def ok(self) -> bool:
        return self.returncode == 0


@dataclass
class PhaseRunner:
    """Runs a system's phases sequentially with parameter environment.

    Parameters
    ----------
    optroot:
        The tree to operate in.
    timeout:
        Per-phase wall limit in real seconds.
    """

    optroot: OptRoot
    timeout: float = 60.0
    history: List[PhaseResult] = field(default_factory=list)

    def environment(self, parameters: Mapping[str, float]) -> Dict[str, str]:
        env = {"OPTROOT": str(self.optroot.root)}
        for name, value in parameters.items():
            env[f"OPT_PARAM_{name.upper()}"] = f"{float(value):.12g}"
        return env

    def run_system(
        self,
        system: str,
        parameters: Mapping[str, float],
        workdir: Optional[Path] = None,
    ) -> List[PhaseResult]:
        """Run every phase of ``system`` in order; stops at the first failure.

        ``workdir`` overrides the execution directory (e.g. a ``par<N>``
        copy); by default each script runs in its own directory.
        """
        import os

        results: List[PhaseResult] = []
        env = dict(os.environ)
        env.update(self.environment(parameters))
        for script in self.optroot.phases(system):
            proc = subprocess.run(
                ["/bin/sh", str(script)],
                cwd=str(workdir if workdir is not None else script.parent),
                env=env,
                capture_output=True,
                text=True,
                timeout=self.timeout,
            )
            result = PhaseResult(
                script=script,
                returncode=proc.returncode,
                stdout=proc.stdout,
                stderr=proc.stderr,
            )
            results.append(result)
            self.history.append(result)
            if not result.ok:
                break
        return results


def run_system_phases(
    optroot: OptRoot,
    system: str,
    parameters: Mapping[str, float],
    timeout: float = 60.0,
) -> List[PhaseResult]:
    """One-shot convenience wrapper around :class:`PhaseRunner`."""
    return PhaseRunner(optroot, timeout=timeout).run_system(system, parameters)
