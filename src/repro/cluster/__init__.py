"""Virtual cluster model (paper §4.1-§4.2 and the §3.4 scale-up study).

The paper ran on Clemson's Palmetto cluster (dual quad-core nodes, PBS/Torque
scheduling, Myrinet 10G interconnect).  This package models exactly the
pieces the scale-up experiment measures: nodes x cores, the PBS machinefile
(8 entries per node), the paper's processor-allocation policy (Table 3.3),
a latency/bandwidth network model and an event-driven clock so that the
"time per simplex step vs. dimension" curve of Fig. 3.18c can be produced on
a laptop.
"""

from repro.cluster.node import Cluster, Node
from repro.cluster.machinefile import machinefile, parse_machinefile, write_machinefile
from repro.cluster.allocation import (
    JobAllocation,
    ProcessorAllocation,
    allocate_processors,
)
from repro.cluster.network import NetworkModel
from repro.cluster.scheduler import PBSScheduler, JobRequest
from repro.cluster.events import EventSimulator
from repro.cluster.simulation import SimulatedMWPool

__all__ = [
    "Cluster",
    "EventSimulator",
    "JobAllocation",
    "JobRequest",
    "NetworkModel",
    "Node",
    "PBSScheduler",
    "ProcessorAllocation",
    "SimulatedMWPool",
    "allocate_processors",
    "machinefile",
    "parse_machinefile",
    "write_machinefile",
]
