"""Minimal event-driven simulation engine.

Drives virtual-time experiments: callbacks are scheduled at absolute or
relative times and executed in time order (FIFO among ties).  The scale-up
study uses it to account for overlapping sampling and communication without
any real concurrency.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventSimulator:
    """Priority-queue event loop over virtual time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.n_dispatched = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` virtual seconds."""
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when`` (>= now)."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self._now = when
        callback()
        self.n_dispatched += 1
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Dispatch events until the queue empties or ``until`` is reached.

        Returns the final virtual time.  ``max_events`` guards against
        accidental self-perpetuating event storms.
        """
        dispatched = 0
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                break
            if dispatched >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
            self.step()
            dispatched += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def __len__(self) -> int:
        return len(self._heap)
