"""Nodes and clusters.

A :class:`Node` is a named machine with a core count; a :class:`Cluster` is
an ordered collection of nodes.  :meth:`Cluster.palmetto` builds a scaled
version of the paper's testbed (§4.1: 1541 nodes, dual quad-core processors
-> 8 cores per node, 12328 cores total).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class Node:
    """One compute node."""

    __slots__ = ("name", "cores")

    def __init__(self, name: str, cores: int = 8) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.name = name
        self.cores = int(cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, cores={self.cores})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Node)
            and self.name == other.name
            and self.cores == other.cores
        )

    def __hash__(self) -> int:
        return hash((self.name, self.cores))


class Cluster:
    """Ordered collection of nodes with unique names."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self.nodes: List[Node] = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")

    @classmethod
    def homogeneous(
        cls, n_nodes: int, cores_per_node: int = 8, prefix: str = "node"
    ) -> "Cluster":
        """Build ``n_nodes`` identical nodes named ``<prefix>NNNN``."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        return cls(
            Node(f"{prefix}{i:04d}", cores_per_node) for i in range(n_nodes)
        )

    @classmethod
    def palmetto(cls, n_nodes: int = 1541) -> "Cluster":
        """The paper's testbed shape: 8-core nodes (dual quad-core)."""
        return cls.homogeneous(n_nodes, cores_per_node=8, prefix="palmetto")

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster {len(self.nodes)} nodes, {self.total_cores} cores>"
