"""PBS machinefiles (paper §4.2, "Job Scheduling").

"PBS makes a copy of the machinefile ($PBS_NODEFILE) in the $OPTROOT
directory, which contains the list of nodes (8 entries for each node)
allocated to the job" — i.e. one line per core, node names repeated.  The
paper's software does its *own* scheduling from this file, assigning the
master the first entry, the workers the next ``d+2`` (sic; plus trial
vertices), and each client-server job the next block.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.cluster.node import Cluster


def machinefile(cluster: Cluster) -> List[str]:
    """One entry (node name) per core, in node order — the $PBS_NODEFILE."""
    entries: List[str] = []
    for node in cluster:
        entries.extend([node.name] * node.cores)
    return entries


def write_machinefile(cluster: Cluster, path) -> Path:
    """Write the machinefile to disk in PBS format (one name per line)."""
    path = Path(path)
    path.write_text("\n".join(machinefile(cluster)) + "\n")
    return path


def parse_machinefile(path) -> List[str]:
    """Read a machinefile back into its entry list."""
    lines = Path(path).read_text().splitlines()
    entries = [line.strip() for line in lines if line.strip()]
    if not entries:
        raise ValueError(f"machinefile {path} is empty")
    return entries
