"""PBS/Torque-style batch scheduler over a virtual cluster (paper §4.2).

"The job scheduler then interacts with the cluster Torque resource scheduler
to determine when the available computing resources are granted ... The
submitted jobs may be queued for several hours or even days."  The model
here: FIFO queue, first-fit core allocation over whole machinefile order,
release on completion, queued jobs admitted as cores free up.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.machinefile import machinefile
from repro.cluster.node import Cluster


@dataclass
class JobRequest:
    """A batch submission asking for ``n_procs`` cores."""

    n_procs: int
    name: str = "job"
    job_id: int = field(default_factory=itertools.count(1).__next__)

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {self.n_procs}")


@dataclass
class RunningJob:
    request: JobRequest
    entries: List[str]  # machinefile slice granted to the job


class PBSScheduler:
    """FIFO first-fit core scheduler.

    Cores are tracked as machinefile entries (one per core).  ``submit``
    either starts a job immediately (returning its entries) or queues it;
    ``release`` frees cores and admits queued jobs in order.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._free: List[str] = machinefile(cluster)
        self._queue: deque[JobRequest] = deque()
        self.running: Dict[int, RunningJob] = {}
        self.n_started = 0
        self.n_completed = 0

    @property
    def free_cores(self) -> int:
        return len(self._free)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def submit(self, request: JobRequest) -> Optional[RunningJob]:
        """Submit a job; returns the running job if started immediately."""
        if request.n_procs > self.cluster.total_cores:
            raise ValueError(
                f"job wants {request.n_procs} cores but the cluster has "
                f"{self.cluster.total_cores}"
            )
        self._queue.append(request)
        started = self._admit()
        return next(
            (j for j in started if j.request.job_id == request.job_id), None
        )

    def _admit(self) -> List[RunningJob]:
        """Start queued jobs (FIFO) while cores suffice."""
        started: List[RunningJob] = []
        while self._queue and self._queue[0].n_procs <= len(self._free):
            request = self._queue.popleft()
            entries = self._free[: request.n_procs]
            del self._free[: request.n_procs]
            job = RunningJob(request=request, entries=entries)
            self.running[request.job_id] = job
            self.n_started += 1
            started.append(job)
        return started

    def release(self, job_id: int) -> List[RunningJob]:
        """Complete a job, free its cores, and admit queued jobs.

        Returns any jobs that started as a result.
        """
        try:
            job = self.running.pop(job_id)
        except KeyError:
            raise KeyError(f"job {job_id} is not running") from None
        self._free.extend(job.entries)
        self.n_completed += 1
        return self._admit()

    def utilization(self) -> float:
        """Fraction of cluster cores currently allocated."""
        total = self.cluster.total_cores
        return (total - len(self._free)) / total
