"""The paper's processor-allocation policy (Table 3.3 and §3.1).

For a d-dimensional problem with ``Ns`` simulations per vertex:

    workers = servers = d + 3          (d+1 vertices + 2 trial vertices)
    clients            = (d + 3) * Ns
    total              = d*Ns + 3*Ns + 2*d + 7
                       = 1 master + (d+3) workers + (d+3) servers
                         + (d+3)*Ns clients

Assignment order follows §4.2: the master takes the first machinefile entry,
the workers the next block, then each worker's client-server job takes the
next ``1 + Ns`` entries in machinefile order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ProcessorAllocation:
    """Counts of each role for a problem size (one Table 3.3 row)."""

    dim: int
    ns: int
    n_workers: int
    n_servers: int
    n_clients: int
    total: int

    @classmethod
    def for_problem(cls, dim: int, ns: int = 1) -> "ProcessorAllocation":
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if ns < 1:
            raise ValueError(f"ns must be >= 1, got {ns}")
        n_workers = dim + 3
        n_clients = (dim + 3) * ns
        total = dim * ns + 3 * ns + 2 * dim + 7
        alloc = cls(
            dim=dim,
            ns=ns,
            n_workers=n_workers,
            n_servers=n_workers,
            n_clients=n_clients,
            total=total,
        )
        # invariant: the closed form equals the role sum
        assert total == 1 + alloc.n_workers + alloc.n_servers + alloc.n_clients
        return alloc

    def as_row(self) -> tuple:
        """(d, workers, servers, clients, total) — a Table 3.3 row."""
        return (self.dim, self.n_workers, self.n_servers, self.n_clients, self.total)


@dataclass(frozen=True)
class JobAllocation:
    """Concrete machinefile assignment of every process."""

    master: str
    workers: List[str]
    servers: List[str]
    clients: List[List[str]]  # per-vertex client blocks

    @property
    def total(self) -> int:
        return (
            1
            + len(self.workers)
            + len(self.servers)
            + sum(len(c) for c in self.clients)
        )

    def node_usage(self) -> Dict[str, int]:
        """Processes per node name (for utilization checks)."""
        usage: Dict[str, int] = {}
        for entry in (
            [self.master]
            + self.workers
            + self.servers
            + [e for block in self.clients for e in block]
        ):
            usage[entry] = usage.get(entry, 0) + 1
        return usage


def allocate_processors(
    entries: Sequence[str], dim: int, ns: int = 1
) -> JobAllocation:
    """Assign machinefile ``entries`` to roles in the paper's order.

    Master first, then the ``d+3`` workers; then, per vertex, a client-server
    block of ``1 + Ns`` entries (server first).  Raises when the machinefile
    is too small.
    """
    counts = ProcessorAllocation.for_problem(dim, ns)
    if len(entries) < counts.total:
        raise ValueError(
            f"machinefile has {len(entries)} entries; "
            f"d={dim}, Ns={ns} needs {counts.total}"
        )
    it = iter(entries)
    master = next(it)
    workers = [next(it) for _ in range(counts.n_workers)]
    servers: List[str] = []
    clients: List[List[str]] = []
    for _ in range(counts.n_workers):
        servers.append(next(it))
        clients.append([next(it) for _ in range(ns)])
    return JobAllocation(master=master, workers=workers, servers=servers, clients=clients)
