"""MW-on-a-cluster time accounting for the scale-up study (Fig. 3.18).

:class:`SimulatedMWPool` is a drop-in evaluation pool that charges virtual
time for the framework's communication on top of the sampling time itself.
Per dispatch cycle (one ``advance``), the master serially

* packs and sends one task message per active vertex over the MPI fabric,
* writes/reads the per-vertex spool files at the simplex level serially
  (``master_io_per_vertex`` each),
* each worker forwards the request to its server over file I/O (parallel
  across vertices, so only the slowest single hop counts),
* results return the same way, gathered serially at the master.

That gives ``overhead(n) = n (2 T_mpi(msg) + T_master_io) + 2 T_file(msg)``
for ``n`` active vertices — linear in the vertex count, which for the
Rosenbrock scale-up means the time *per simplex step* grows mildly with
dimension, "minor, and attributed to the I/O at the simplex and vertex
levels" exactly as the paper reports for Fig. 3.18c.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.allocation import ProcessorAllocation
from repro.cluster.network import NetworkModel
from repro.cluster.node import Cluster
from repro.noise.stochastic import SamplingPool, StochasticFunction


class SimulatedMWPool(SamplingPool):
    """Sampling pool that also charges MW communication overheads.

    Parameters
    ----------
    func:
        Stochastic objective (as for :class:`SamplingPool`).
    cluster:
        Virtual cluster; construction verifies the paper's processor
        allocation for ``(dim, ns)`` fits on it.
    dim, ns:
        Problem dimensionality and per-vertex simulation count, for the
        Table 3.3 processor accounting.
    mpi, fileio:
        Network models for the two communication levels (defaults: the
        paper's Myrinet MPI fabric and spool-file I/O).
    task_bytes, result_bytes:
        Message sizes; defaults approximate a packed theta vector plus
        headers.
    """

    def __init__(
        self,
        func: StochasticFunction,
        cluster: Cluster,
        dim: int,
        ns: int = 1,
        warmup: float = 1.0,
        mpi: Optional[NetworkModel] = None,
        fileio: Optional[NetworkModel] = None,
        task_bytes: Optional[int] = None,
        result_bytes: int = 256,
        master_io_per_vertex: float = 5e-3,
    ) -> None:
        super().__init__(func, warmup=warmup, concurrent=True)
        self.allocation = ProcessorAllocation.for_problem(dim, ns)
        if self.allocation.total > cluster.total_cores:
            raise ValueError(
                f"allocation needs {self.allocation.total} cores; cluster has "
                f"{cluster.total_cores}"
            )
        self.cluster = cluster
        self.mpi = mpi if mpi is not None else NetworkModel.myrinet_10g()
        self.fileio = fileio if fileio is not None else NetworkModel.file_io()
        # one packed float64 per dimension plus framing
        self.task_bytes = task_bytes if task_bytes is not None else 8 * dim + 64
        self.result_bytes = int(result_bytes)
        if master_io_per_vertex < 0.0:
            raise ValueError(
                f"master_io_per_vertex must be >= 0, got {master_io_per_vertex}"
            )
        self.master_io_per_vertex = float(master_io_per_vertex)
        self.n_dispatch_cycles = 0
        self.comm_overhead = 0.0

    def _cycle_overhead(self, n_active: int) -> float:
        """Virtual seconds of communication for one dispatch cycle."""
        if n_active == 0:
            return 0.0
        # master serializes sends/receives over MPI plus its per-vertex
        # simplex-level spool-file bookkeeping
        per_vertex = (
            self.mpi.round_trip(self.task_bytes, self.result_bytes)
            + self.master_io_per_vertex
        )
        # worker<->server file hops run in parallel across vertices
        file_cost = self.fileio.round_trip(self.task_bytes, self.result_bytes)
        return n_active * per_vertex + file_cost

    def advance(self, dt: float, targets=None) -> float:
        now = super().advance(dt, targets=targets)
        overhead = self._cycle_overhead(len(self.active))
        self.n_dispatch_cycles += 1
        self.comm_overhead += overhead
        if overhead > 0.0:
            now = self.clock.advance(overhead)
        return now
