"""Latency/bandwidth communication model (paper §4.1).

The paper's interconnect is Myrinet 10G: "low latency message passing
(2.3 us) and 1.2 GB/s of sustained network bandwidth".  The model is the
standard first-order cost ``T(n) = latency + n / bandwidth``; file-I/O hops
(worker <-> server spool files) get a much higher latency preset.
"""

from __future__ import annotations


class NetworkModel:
    """First-order message cost model.

    Parameters
    ----------
    latency:
        Per-message setup time in seconds.
    bandwidth:
        Sustained transfer rate in bytes/second.
    """

    __slots__ = ("latency", "bandwidth", "name")

    def __init__(self, latency: float, bandwidth: float, name: str = "custom") -> None:
        if latency < 0.0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if not (bandwidth > 0.0):
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.name = name

    @classmethod
    def myrinet_10g(cls) -> "NetworkModel":
        """The paper's MPI fabric: 2.3 us latency, 1.2 GB/s sustained."""
        return cls(latency=2.3e-6, bandwidth=1.2e9, name="myrinet-10g")

    @classmethod
    def gigabit_ethernet(cls) -> "NetworkModel":
        return cls(latency=5.0e-5, bandwidth=1.25e8, name="gige")

    @classmethod
    def file_io(cls) -> "NetworkModel":
        """Worker<->server spool files on a shared filesystem: slow setup."""
        return cls(latency=1.0e-2, bandwidth=1.0e8, name="file-io")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to deliver one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def round_trip(self, nbytes_out: int, nbytes_back: int) -> float:
        """Request/response pair cost."""
        return self.transfer_time(nbytes_out) + self.transfer_time(nbytes_back)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkModel({self.name}: {self.latency:.2g}s + n/{self.bandwidth:.3g}B/s)"
        )
