"""Map helpers with the SeedSequence discipline for parallel sampling.

Benchmark sweeps (100 initial simplexes x several algorithms) are
embarrassingly parallel; these helpers run them serially, on threads, or on
processes while guaranteeing independent, reproducible RNG streams per task
(the mpi4py-tutorial style of explicit, structured parallelism rather than
shared mutable state).
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("serial", "thread", "process")


def seeded_tasks(
    items: Sequence[T], seed: Optional[int] = None
) -> List[Tuple[T, np.random.SeedSequence]]:
    """Pair each item with an independent spawned SeedSequence."""
    seqs = np.random.SeedSequence(seed).spawn(len(items))
    return list(zip(items, seqs))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Order-preserving map over items with a choice of executor.

    ``fn`` must be picklable for the ``process`` backend.  Exceptions
    propagate (the first one raised by any task).  ``chunksize`` batches
    items per inter-process message on the ``process`` backend, cutting IPC
    overhead on large sweeps of cheap tasks; the other backends ignore it.
    """
    items = list(items)
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    chunksize = int(chunksize)
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if backend == "serial" or len(items) <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(fn, items))
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
