"""Map helpers with the SeedSequence discipline for parallel sampling.

Benchmark sweeps (100 initial simplexes x several algorithms) are
embarrassingly parallel; these helpers run them serially, on threads, on
processes, or through the :mod:`repro.mw` master-worker framework, while
guaranteeing independent, reproducible RNG streams per task (the
mpi4py-tutorial style of explicit, structured parallelism rather than
shared mutable state).

The ``mw`` backend routes each item through an
:class:`~repro.mw.MWDriver` task, which buys worker-crash resilience
(dead workers requeue their tasks) at the cost of the mw codec's type
restrictions: items and results must be codec-serializable (scalars,
strings, bytes, lists, tuples, dicts, NumPy arrays) when the transport
crosses process boundaries.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: Backends :func:`parallel_map` accepts.
BACKENDS = ("serial", "thread", "process", "mw")
_BACKENDS = BACKENDS  # backwards-compatible alias


def seeded_tasks(
    items: Sequence[T], seed: Optional[int] = None
) -> List[Tuple[T, np.random.SeedSequence]]:
    """Pair each item with an independent spawned SeedSequence."""
    seqs = np.random.SeedSequence(seed).spawn(len(items))
    return list(zip(items, seqs))


def _mw_map(
    fn: Callable[[T], R],
    items: List[T],
    max_workers: Optional[int],
    transport: str,
) -> List[R]:
    """Order-preserving map through an ephemeral :class:`MWDriver`."""
    from repro.mw.driver import MWDriver
    from repro.mw.transport import FunctionExecutor

    n_workers = max(1, min(max_workers or os.cpu_count() or 2, len(items)))
    with MWDriver(
        FunctionExecutor(fn), n_workers=n_workers, backend=transport, seed=0
    ) as driver:
        tasks = [driver.submit(item) for item in items]
        driver.wait_all()
    for task in tasks:
        if not task.done:
            raise RuntimeError(f"mw task failed: {task.error}")
    return [task.result for task in tasks]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    backend: str = "serial",
    max_workers: Optional[int] = None,
    chunksize: int = 1,
    mw_transport: str = "process",
) -> List[R]:
    """Order-preserving map over items with a choice of executor.

    ``fn`` must be picklable for the ``process`` and ``mw`` backends.
    Exceptions propagate (the first one raised by any task; the ``mw``
    backend retries worker errors first and raises ``RuntimeError`` once
    the retry budget is spent).  ``chunksize`` batches items per
    inter-process message on the ``process`` backend, cutting IPC overhead
    on large sweeps of cheap tasks; the other backends ignore it.
    ``mw_transport`` picks what mw workers run on (``inproc`` /
    ``threaded`` / ``process``, or a ``tcp://host:port`` listen URL for
    standalone cross-host workers — ``fn`` must then be importable by
    ``module:attr`` on the worker hosts) and is ignored by the other
    backends.
    """
    items = list(items)
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    chunksize = int(chunksize)
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if backend == "serial" or len(items) <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(fn, items))
    if backend == "mw":
        return _mw_map(fn, items, max_workers, mw_transport)
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
