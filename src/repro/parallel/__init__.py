"""Real-parallel evaluation helpers (serial / thread / process / mw maps)."""

from repro.parallel.backends import BACKENDS, parallel_map, seeded_tasks

__all__ = ["BACKENDS", "parallel_map", "seeded_tasks"]
