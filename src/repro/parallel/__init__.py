"""Real-parallel evaluation helpers (serial / thread / process maps)."""

from repro.parallel.backends import parallel_map, seeded_tasks

__all__ = ["parallel_map", "seeded_tasks"]
