"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry half of :mod:`repro.telemetry` — zero dependencies, safe to
call from any thread, and cheap enough to leave compiled into every hot
path: a *disabled* registry hands out shared null instruments whose
update methods are empty-bodied no-ops, so instrumentation costs one
attribute lookup and one call when telemetry is off (the bench-regression
gate in CI holds the store hot path to <5% overhead even when it is on).

Metrics follow Prometheus conventions — ``snake_case`` names with a unit
suffix, label sets identifying the sub-series (``engine="sqlite"``,
``op="claim"``) — and :func:`render_prometheus` emits the standard text
exposition format without requiring any Prometheus client library.
Registries serialize to plain-JSON snapshots (:meth:`MetricsRegistry.
snapshot`) that ride the ``telemetry.jsonl`` event trace; snapshots from
several cooperating runner processes are combined by
:func:`merge_snapshots` (counters and histograms sum, gauges last-wins),
which is how ``campaign metrics`` reports a whole campaign from the
per-runner dumps in its trace file.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket boundaries (seconds): spans store appends
#: (sub-millisecond) through batch evaluations (minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, totals).

    Thread-safe; increments may be fractional (busy-seconds accumulate
    through a counter too).
    """

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value


class Gauge:
    """Value that can go up and down (in-flight jobs, live workers)."""

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1) from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """Cumulative fixed-bucket histogram (latencies, durations).

    ``buckets`` are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the tail, so ``counts`` has ``len(buckets) + 1``
    entries.  Bucket counts are cumulative at render time (Prometheus
    ``le`` semantics) but stored per-bucket here.
    """

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must be ascending: {buckets}")
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def counts(self) -> List[int]:
        """Per-bucket (non-cumulative) observation counts, ``+Inf`` last."""
        return list(self._counts)


class NullCounter:
    """No-op counter handed out by a disabled registry."""

    name = ""
    labels: Dict[str, str] = {}
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Do nothing (telemetry disabled)."""


class NullGauge:
    """No-op gauge handed out by a disabled registry."""

    name = ""
    labels: Dict[str, str] = {}
    value = 0.0

    def set(self, value: float) -> None:
        """Do nothing (telemetry disabled)."""

    def inc(self, amount: float = 1.0) -> None:
        """Do nothing (telemetry disabled)."""

    def dec(self, amount: float = 1.0) -> None:
        """Do nothing (telemetry disabled)."""


class NullHistogram:
    """No-op histogram handed out by a disabled registry."""

    name = ""
    labels: Dict[str, str] = {}
    buckets: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    counts: List[int] = []

    def observe(self, value: float) -> None:
        """Do nothing (telemetry disabled)."""


#: Shared null instruments — one instance each, returned for every
#: metric of a disabled registry, so the disabled path allocates nothing.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments.

    One registry per telemetry context (normally one per runner
    process).  ``counter`` / ``gauge`` / ``histogram`` return the
    instrument for a ``(name, labels)`` pair, creating it on first use;
    a *disabled* registry returns the shared null instruments instead,
    which is what makes instrumentation cheap-by-default.  Help strings
    are kept per metric *name* (first writer wins) for the Prometheus
    ``# HELP`` line.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, Tuple], object] = {}
        self._help: Dict[str, str] = {}

    def _get(self, kind: str, name: str, help: str, labels: dict, factory):
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                if help and name not in self._help:
                    self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get("counter", name, help, labels,
                         lambda: Counter(name, labels))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return NULL_GAUGE
        return self._get("gauge", name, help, labels,
                         lambda: Gauge(name, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(
            "histogram", name, help, labels,
            lambda: Histogram(name, labels, buckets=buckets or DEFAULT_BUCKETS),
        )

    def snapshot(self) -> dict:
        """Plain-JSON dump of every instrument (the ``metrics`` trace event).

        Shape: ``{"counters": [...], "gauges": [...], "histograms":
        [...]}`` where each entry carries ``name``, ``help``, ``labels``
        and its values — the input format of :func:`merge_snapshots` and
        :func:`render_prometheus`.
        """
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        with self._lock:
            items = list(self._metrics.items())
            helps = dict(self._help)
        for (kind, name, _key), metric in sorted(items, key=lambda kv: kv[0]):
            entry = {
                "name": name,
                "help": helps.get(name, ""),
                "labels": dict(metric.labels),
            }
            if kind == "counter":
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = metric.counts
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                out["histograms"].append(entry)
        return out


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Combine registry snapshots from several runners into one.

    Counters and histograms with the same ``(name, labels)`` sum
    (histograms must agree on bucket boundaries; mismatches raise
    ``ValueError`` rather than silently mis-binning); gauges last-wins.
    The result has the same shape as :meth:`MetricsRegistry.snapshot`,
    so it renders through :func:`render_prometheus` directly.
    """
    counters: Dict[Tuple, dict] = {}
    gauges: Dict[Tuple, dict] = {}
    histograms: Dict[Tuple, dict] = {}
    for snap in snapshots:
        for entry in snap.get("counters", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            if key in counters:
                counters[key]["value"] += entry.get("value", 0.0)
            else:
                counters[key] = dict(entry)
        for entry in snap.get("gauges", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            gauges[key] = dict(entry)  # last snapshot wins
        for entry in snap.get("histograms", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            if key in histograms:
                merged = histograms[key]
                if list(merged["buckets"]) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket boundaries differ "
                        f"across snapshots"
                    )
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], entry["counts"])
                ]
                merged["sum"] += entry.get("sum", 0.0)
                merged["count"] += entry.get("count", 0)
            else:
                histograms[key] = {
                    **entry,
                    "counts": list(entry["counts"]),
                }
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
    }


def _format_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{str(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    ``# HELP`` / ``# TYPE`` headers appear once per metric name;
    histograms expand into cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, exactly as a Prometheus client library
    would emit them.  The input is a :meth:`MetricsRegistry.snapshot`
    (or a :func:`merge_snapshots` result).
    """
    lines: List[str] = []
    seen_header = set()

    def header(name: str, kind: str, help: str) -> None:
        if name in seen_header:
            return
        seen_header.add(name)
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", []):
        header(entry["name"], "counter", entry.get("help", ""))
        lines.append(
            f"{entry['name']}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", []):
        header(entry["name"], "gauge", entry.get("help", ""))
        lines.append(
            f"{entry['name']}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", []):
        name = entry["name"]
        header(name, "histogram", entry.get("help", ""))
        labels = entry.get("labels", {})
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket{_format_labels(labels, {'le': _format_value(bound)})} "
                f"{cumulative}"
            )
        cumulative += entry["counts"][len(entry["buckets"])]
        lines.append(
            f"{name}_bucket{_format_labels(labels, {'le': '+Inf'})} {cumulative}"
        )
        lines.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_format_labels(labels)} {entry['count']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
