"""Observability substrate for the campaign stack.

``repro.telemetry`` bundles the two sinks the execution layers report
through — a process-local metrics registry (:mod:`repro.telemetry.
metrics`) and an append-only per-campaign event trace (:mod:`repro.
telemetry.trace`) — behind one facade, :class:`Telemetry`.  The runner,
the store backends, and the mw driver/transports all take a
``Telemetry`` and never check whether it is live: a disabled instance
(the default, via :data:`NULL_TELEMETRY`) hands out no-op instruments
and skips the trace entirely, so instrumentation stays compiled into
every hot path at near-zero cost (the bench-regression CI gate holds
the store hot path to <5% overhead even when telemetry is *enabled*).

Enable with the ``--telemetry`` CLI flag or ``$REPRO_TELEMETRY=1``.
Exported output: ``<campaign>/telemetry.jsonl`` (trace events plus
registry snapshots) and ``campaign metrics [--json]`` (Prometheus-text
exposition merged across runners).  See ``docs/OBSERVABILITY.md`` for
the metric catalogue and trace schema.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from .trace import (
    EVENT_SCHEMAS,
    TELEMETRY_FILENAME,
    TraceWriter,
    last_event,
    new_run_id,
    new_span_id,
    read_trace,
    validate_trace,
)

#: Environment variable that switches telemetry on for a whole process
#: tree (the CLI ``--telemetry`` flag sets it so worker subprocesses
#: inherit the decision).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_FALSY = ("", "0", "false", "no", "off")


def telemetry_enabled() -> bool:
    """True when ``$REPRO_TELEMETRY`` is set to a truthy value."""
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() not in _FALSY


class _NullTimer:
    """Context manager that measures nothing (telemetry disabled)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager observing its elapsed time into a histogram."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram) -> None:
        self._histogram = histogram

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(time.perf_counter() - self._t0)
        return False


class _Span:
    """Context manager emitting one folded ``span`` trace event on exit."""

    __slots__ = ("_telemetry", "name", "span_id", "_attrs", "_t0", "_wall0")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.span_id = new_span_id()
        self._attrs = attrs

    def __enter__(self):
        self._t0 = time.perf_counter()
        self._wall0 = time.time()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0
        self._telemetry.event(
            "span",
            name=self.name,
            span_id=self.span_id,
            t_start=self._wall0,
            duration_s=duration,
            ok=exc_type is None,
            **self._attrs,
        )
        self._telemetry.histogram(
            "repro_span_seconds", "Duration of runner lifecycle spans.",
            span=self.name,
        ).observe(duration)
        return False


class _NullSpan:
    """Span stand-in for disabled telemetry: stable ids, no I/O."""

    name = ""
    span_id = ""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Facade over one metrics registry plus an optional trace writer.

    Construct with :meth:`create` (explicitly enabled — the ``--telemetry``
    path) or :meth:`from_env` (enabled only when ``$REPRO_TELEMETRY`` is
    truthy; otherwise returns the shared :data:`NULL_TELEMETRY`).  Every
    accessor degrades to a no-op on a disabled instance, so callers
    instrument unconditionally.
    """

    def __init__(
        self,
        enabled: bool = True,
        run_id: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceWriter] = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.run_id = run_id or (new_run_id() if enabled else "")
        self.registry = registry or MetricsRegistry(enabled=self.enabled)
        self.trace = trace

    @classmethod
    def create(
        cls,
        directory: Optional[Union[str, Path]] = None,
        run_id: Optional[str] = None,
        runner: str = "",
    ) -> "Telemetry":
        """An *enabled* telemetry context.

        With ``directory``, trace events append to
        ``directory/telemetry.jsonl``; without, only the in-process
        registry is live (useful for benchmarks and unit tests).
        """
        run_id = run_id or new_run_id()
        trace = None
        if directory is not None:
            trace = TraceWriter(
                Path(directory) / TELEMETRY_FILENAME, run_id=run_id, runner=runner
            )
        return cls(enabled=True, run_id=run_id, trace=trace)

    @classmethod
    def from_env(
        cls,
        directory: Optional[Union[str, Path]] = None,
        runner: str = "",
    ) -> "Telemetry":
        """:meth:`create` if ``$REPRO_TELEMETRY`` is truthy, else the null.

        The returned null is the shared :data:`NULL_TELEMETRY` singleton,
        so the disabled path allocates nothing.
        """
        if not telemetry_enabled():
            return NULL_TELEMETRY
        return cls.create(directory=directory, runner=runner)

    def counter(self, name: str, help: str = "", **labels: str):
        """Registry counter (a shared no-op when disabled)."""
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels: str):
        """Registry gauge (a shared no-op when disabled)."""
        return self.registry.gauge(name, help, **labels)

    def histogram(self, name: str, help: str = "", **labels: str):
        """Registry histogram (a shared no-op when disabled)."""
        return self.registry.histogram(name, help, **labels)

    def timer(self, name: str, help: str = "", **labels: str):
        """Context manager observing elapsed seconds into a histogram.

        The disabled path returns a shared null context that never calls
        the clock — this is the hot-path primitive the store backends
        wrap their lock-holding sections with.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.registry.histogram(name, help, **labels))

    def span(self, name: str, **attrs):
        """Context manager tracing one lifecycle phase.

        On exit it writes a single folded ``span`` event (id, wall-clock
        start, duration, ok flag, plus ``attrs``) and feeds the
        ``repro_span_seconds`` histogram.  Disabled: a shared null.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, event: str, **fields) -> None:
        """Append one trace event (no-op without an attached trace)."""
        if self.trace is not None:
            self.trace.write(event, **fields)

    def write_metrics(self) -> None:
        """Persist the current registry snapshot as a ``metrics`` event.

        ``campaign metrics`` reads these back — the registry is process
        local, so snapshots in the trace are the only cross-process view.
        """
        if self.trace is not None:
            self.trace.write("metrics", metrics=self.registry.snapshot())

    def close(self) -> None:
        """Release the trace file descriptor, if any."""
        if self.trace is not None:
            self.trace.close()


#: Shared disabled instance — the default telemetry of every layer.
NULL_TELEMETRY = Telemetry(enabled=False)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "TELEMETRY_ENV",
    "TELEMETRY_FILENAME",
    "Telemetry",
    "TraceWriter",
    "last_event",
    "merge_snapshots",
    "new_run_id",
    "new_span_id",
    "read_trace",
    "render_prometheus",
    "telemetry_enabled",
    "validate_trace",
]
