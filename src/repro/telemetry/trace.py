"""Append-only event trace: the ``telemetry.jsonl`` file format.

Each campaign directory gets one trace file that every cooperating
runner appends to, using the result store's durability idiom — the
record is serialized first, then written with a single ``os.write`` to
an ``O_APPEND`` descriptor, so concurrent writers interleave whole lines
and a SIGKILL can tear at most the final line.  The reader
(:func:`read_trace`) tolerates exactly that: a torn trailing line is
skipped, never raised.

Event kinds and their required fields (checked by
:func:`validate_trace`, which the CI ``telemetry-smoke`` job runs
against a real campaign's trace):

``run_start``
    ``campaign``, ``backend``, ``n_total`` — a runner began draining.
``run_end``
    ``done``, ``failed``, ``elapsed_s`` — the same runner finished.
``span``
    ``name``, ``span_id``, ``t_start``, ``duration_s`` — one timed
    phase (claim / evaluate / record), folded to a single line on exit.
``job``
    ``job_id``, ``span_id``, ``status``, ``elapsed_s`` — one job
    execution; ``span_id`` matches the ``$REPRO_JOB_AUDIT_LOG`` entry
    written by the executing process, which is what lets the chaos
    suite correlate audit lines with trace events.
``workers``
    ``workers`` — per-rank utilization rows from the mw driver.
``metrics``
    ``metrics`` — a full registry snapshot
    (:meth:`repro.telemetry.metrics.MetricsRegistry.snapshot`);
    ``campaign metrics`` merges the latest snapshot per runner.

All events additionally carry ``ts`` (wall-clock seconds), ``event``,
``run_id``, and ``runner``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Name of the per-campaign trace file inside the campaign directory.
TELEMETRY_FILENAME = "telemetry.jsonl"

#: Required fields per event kind, beyond the envelope (ts/event/run_id/runner).
EVENT_SCHEMAS: Dict[str, tuple] = {
    "run_start": ("campaign", "backend", "n_total"),
    "run_end": ("done", "failed", "elapsed_s"),
    "span": ("name", "span_id", "t_start", "duration_s"),
    "job": ("job_id", "span_id", "status", "elapsed_s"),
    "workers": ("workers",),
    "metrics": ("metrics",),
}


def new_run_id() -> str:
    """A fresh 12-hex-digit run identifier (one per ``run()`` call)."""
    return uuid.uuid4().hex[:12]


def new_span_id() -> str:
    """A fresh 16-hex-digit span identifier (one per timed unit)."""
    return uuid.uuid4().hex[:16]


class TraceWriter:
    """Append-only writer for one campaign's ``telemetry.jsonl``.

    Safe for concurrent use by multiple runner processes: each event is
    one ``O_APPEND`` write of one full line, the same atomicity contract
    the JSONL result store relies on.  The descriptor is opened lazily
    and kept for the writer's lifetime.
    """

    def __init__(self, path: Union[str, Path], run_id: str, runner: str = "") -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.runner = runner
        self._fd: Optional[int] = None

    def write(self, event: str, **fields) -> dict:
        """Append one event line; returns the record written."""
        record = {"ts": time.time(), "event": event,
                  "run_id": self.run_id, "runner": self.runner}
        record.update(fields)
        payload = json.dumps(record, sort_keys=True) + "\n"
        if self._fd is None:
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(self._fd, payload.encode("utf-8"))
        return record

    def close(self) -> None:
        """Release the file descriptor (further writes reopen it)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def read_trace(path: Union[str, Path]) -> Iterator[dict]:
    """Yield events from a trace file, skipping a torn final line.

    A runner killed mid-write leaves at most one partial trailing line;
    any other malformed line raises, because it indicates corruption
    rather than an interrupted append.
    """
    path = Path(path)
    if not path.exists():
        return
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # torn final line from a killed writer
            raise


def last_event(path: Union[str, Path], event: str) -> Optional[dict]:
    """The most recent event of kind ``event``, or None."""
    found = None
    for record in read_trace(path):
        if record.get("event") == event:
            found = record
    return found


def validate_trace(path: Union[str, Path]) -> List[dict]:
    """Check every event against :data:`EVENT_SCHEMAS`; return the events.

    Raises ``ValueError`` naming the first offending line when an event
    is missing its envelope fields, has an unknown kind, or lacks a
    kind-specific required field.  Used by tests and the CI
    ``telemetry-smoke`` job as the trace-schema gate.
    """
    events = []
    for n, record in enumerate(read_trace(path), start=1):
        for field in ("ts", "event", "run_id", "runner"):
            if field not in record:
                raise ValueError(f"{path}:{n}: event missing {field!r}: {record}")
        kind = record["event"]
        if kind not in EVENT_SCHEMAS:
            raise ValueError(f"{path}:{n}: unknown event kind {kind!r}")
        for field in EVENT_SCHEMAS[kind]:
            if field not in record:
                raise ValueError(
                    f"{path}:{n}: {kind!r} event missing {field!r}: {record}"
                )
        events.append(record)
    return events
