"""Virtual wall-clock used to account for sampling time.

The paper's experiments are time-limited by *sampling*, not by arithmetic: a
simplex update at late stages happens on timescales of ~10^4 seconds because
that is how long the MD simulations must run for the noise to drop.  The
reproduction replaces real sampling with a virtual clock: sampling a vertex
for ``dt`` virtual seconds is instantaneous in wall time but advances this
clock, so "function value vs. time" traces (Fig. 3.4, Fig. 3.18) have the same
meaning as in the paper.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically increasing virtual time counter.

    Parameters
    ----------
    start:
        Initial time.  Must be finite and non-negative.
    """

    __slots__ = ("_now", "_start")

    def __init__(self, start: float = 0.0) -> None:
        if not (start >= 0.0):  # also rejects NaN
            raise ValueError(f"start must be >= 0, got {start!r}")
        self._start = float(start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since construction (or the last :meth:`reset`)."""
        return self._now - self._start

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; a virtual clock never runs backwards.
        """
        dt = float(dt)
        if not (dt >= 0.0):
            raise ValueError(f"dt must be >= 0, got {dt!r}")
        self._now += dt
        return self._now

    def reset(self, start: float | None = None) -> None:
        """Reset the clock to ``start`` (defaults to the original start)."""
        if start is None:
            start = self._start
        if not (start >= 0.0):
            raise ValueError(f"start must be >= 0, got {start!r}")
        self._start = float(start)
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6g})"
