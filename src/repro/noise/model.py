"""The paper's noise model (eqs. 1.1-1.2).

An observation of the objective at parameter point ``theta`` after sampling
for virtual time ``t`` is

    g(theta) = f(theta) + eps(t),        eps(t) ~ N(0, sigma0**2 / t)

so the standard deviation of the noise decays as ``sigma0 / sqrt(t)``.  The
density of eq. 1.2,

    P(eps, t) = sqrt(t / (2 pi sigma0**2)) * exp(-t eps**2 / (2 sigma0**2)),

is exactly the normal density with that variance.  ``sigma0`` may depend on
the location in parameter space (some models are noisier than others); the
algorithms never assume it is known unless told so.
"""

from __future__ import annotations

import math

import numpy as np


class NoiseModel:
    """Gaussian sampling noise with variance ``sigma0**2 / t``.

    Parameters
    ----------
    sigma0:
        Inherent noise scale (standard deviation of a unit-time sample).
        Must be non-negative; ``0`` models a noiseless function.
    """

    __slots__ = ("sigma0",)

    def __init__(self, sigma0: float = 1.0) -> None:
        sigma0 = float(sigma0)
        if not (sigma0 >= 0.0):
            raise ValueError(f"sigma0 must be >= 0, got {sigma0!r}")
        self.sigma0 = sigma0

    # -- moments ---------------------------------------------------------

    def variance(self, t: float) -> float:
        """Noise variance after sampling time ``t`` (eq. 1.2)."""
        t = float(t)
        if t < 0.0:
            raise ValueError(f"t must be >= 0, got {t!r}")
        if self.sigma0 == 0.0:
            return 0.0
        if t == 0.0:
            return math.inf
        return self.sigma0**2 / t

    def sigma(self, t: float) -> float:
        """Noise standard deviation ``sigma0 / sqrt(t)``."""
        v = self.variance(t)
        return math.sqrt(v) if math.isfinite(v) else math.inf

    # -- density ----------------------------------------------------------

    def pdf(self, eps, t: float):
        """Density of the noise at offset ``eps`` after time ``t`` (eq. 1.2)."""
        t = float(t)
        if t <= 0.0:
            raise ValueError(f"t must be > 0 for a proper density, got {t!r}")
        if self.sigma0 == 0.0:
            raise ValueError("sigma0 == 0 gives a degenerate (point-mass) law")
        eps = np.asarray(eps, dtype=float)
        var = self.sigma0**2 / t
        out = np.exp(-(eps**2) / (2.0 * var)) / math.sqrt(2.0 * math.pi * var)
        return float(out) if out.ndim == 0 else out

    # -- sampling ----------------------------------------------------------

    def sample(self, rng: np.random.Generator, t: float, size=None):
        """Draw noise realizations ``eps ~ N(0, sigma0**2/t)``."""
        t = float(t)
        if t <= 0.0:
            raise ValueError(f"t must be > 0 to sample, got {t!r}")
        if self.sigma0 == 0.0:
            return 0.0 if size is None else np.zeros(size)
        return rng.normal(0.0, self.sigma0 / math.sqrt(t), size=size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseModel(sigma0={self.sigma0!r})"
