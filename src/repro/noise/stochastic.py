"""Wrap a deterministic objective with time-dependent sampling noise.

:class:`StochasticFunction` is the bridge between a clean test function (the
"underlying deterministic surface" ``f``) and what the optimizer is allowed to
see: noisy :class:`~repro.noise.evaluation.VertexEvaluation` objects whose
precision improves the longer they are sampled.

Two estimator modes are provided (an ablation axis, see DESIGN.md):

``average`` (default)
    Consistent running average.  Extending an evaluation draws an independent
    block mean ``s ~ N(f, sigma0**2/dt)`` and precision-merges it; the
    estimate after total time ``t`` is exactly ``N(f, sigma0**2/t)`` and
    successive refinements are martingale increments (what real continued
    sampling does).

``resample``
    Fresh draw ``g = f + N(0, sigma0**2/t)`` at every look, matching the
    paper's controlled experiments verbatim ("artificial Gaussian noise ...
    with a variance inversely proportional to the duration for which the
    vertex had been active").

:class:`SamplingPool` keeps a set of evaluations "active": advancing the pool
by ``dt`` extends *every* active evaluation by ``dt`` and moves the virtual
clock, modelling the MW deployment where each vertex's simulations keep
running until the master says stop.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.noise.clock import VirtualClock
from repro.noise.evaluation import VertexEvaluation

Sigma0Spec = Union[float, Callable[[np.ndarray], float]]

_MODES = ("average", "resample")


class StochasticFunction:
    """A noisy, sampled view of a deterministic objective ``f``.

    Parameters
    ----------
    f:
        Underlying deterministic objective ``f(theta) -> float``.
    sigma0:
        Inherent noise scale; either a scalar or a callable of ``theta``
        (eq. 1.2 allows the variance to depend on the location).
    mode:
        ``"average"`` or ``"resample"`` (see module docstring).
    rng:
        ``numpy.random.Generator`` or integer seed.  Controls all noise.
    clock:
        Shared :class:`VirtualClock`; a fresh one is created if omitted.
    sigma_known:
        If True the optimizer is told the true ``sigma0`` for each point; if
        False it only gets block-scatter estimates (realistic case).
    sigma0_guess:
        Prior standard error used before estimates exist when
        ``sigma_known=False``.
    """

    def __init__(
        self,
        f: Callable[[np.ndarray], float],
        sigma0: Sigma0Spec = 1.0,
        mode: str = "average",
        rng: Union[np.random.Generator, int, None] = None,
        clock: Optional[VirtualClock] = None,
        sigma_known: bool = True,
        sigma0_guess: Optional[float] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.f = f
        self._sigma0 = sigma0
        self.mode = mode
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.clock = clock if clock is not None else VirtualClock()
        self.sigma_known = bool(sigma_known)
        if sigma0_guess is None:
            sigma0_guess = sigma0 if isinstance(sigma0, (int, float)) else 1.0
        self.sigma0_guess = float(sigma0_guess)
        # bookkeeping for experiment accounting
        self.n_underlying_calls = 0
        self.total_sampling_time = 0.0

    # -- introspection -------------------------------------------------------

    def sigma0_at(self, theta) -> float:
        """Inherent noise scale at ``theta``."""
        if callable(self._sigma0):
            return float(self._sigma0(np.asarray(theta, dtype=float)))
        return float(self._sigma0)

    def true_value(self, theta) -> float:
        """Noise-free value of the underlying surface (for measurement only).

        Optimizers must never call this; the analysis layer uses it to compute
        the paper's R metric (error of the converged function value).
        """
        return float(self.f(np.asarray(theta, dtype=float)))

    # -- evaluation lifecycle -------------------------------------------------

    def start(self, theta, label: str = "") -> VertexEvaluation:
        """Create an (unsampled) evaluation at ``theta``."""
        sigma0 = self.sigma0_at(theta) if self.sigma_known else None
        return VertexEvaluation(
            theta, sigma0=sigma0, sigma0_guess=self.sigma0_guess, label=label
        )

    def extend(self, ev: VertexEvaluation, dt: float) -> VertexEvaluation:
        """Sample ``ev`` for ``dt`` more virtual seconds (noise only; the
        caller — normally a :class:`SamplingPool` — owns the clock)."""
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        return self.merge_external(ev, dt, float(self.f(ev.theta)))

    def merge_external(self, ev: VertexEvaluation, dt: float, fval: float) -> VertexEvaluation:
        """Merge an externally computed surface value as one sampling block.

        The master-side half of the ask/tell seam: a worker reports the
        deterministic surface value ``fval = f(theta)`` for a proposal and
        the noise model is applied *here*, at merge time, from this
        function's own generator.  Because ``f`` itself never consumes this
        generator, a block merged through this method is bitwise identical
        to one sampled locally by :meth:`extend` — and as long as a round's
        merges happen in pool order, the noise stream is independent of the
        order in which workers replied.  Counts toward
        ``n_underlying_calls`` / ``total_sampling_time`` exactly like a
        local extension (the call happened, just elsewhere).
        """
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        fval = float(fval)
        self.n_underlying_calls += 1
        self.total_sampling_time += dt
        s0 = self.sigma0_at(ev.theta)
        if self.mode == "average":
            if s0 == 0.0:
                block = fval
            else:
                block = fval + self.rng.normal(0.0, s0 / math.sqrt(dt))
            ev.merge_block(dt, block)
        else:  # resample
            t_new = ev.time + dt
            if s0 == 0.0:
                g = fval
            else:
                g = fval + self.rng.normal(0.0, s0 / math.sqrt(t_new))
            ev.replace(t_new, g)
        return ev

    def evaluate(self, theta, time: float, label: str = "") -> VertexEvaluation:
        """Convenience: start an evaluation and sample it for ``time``."""
        ev = self.start(theta, label=label)
        return self.extend(ev, time)

    # -- batched sampling kernel ----------------------------------------------

    def _noise_scales(self, evs: Sequence[VertexEvaluation], dt: float) -> np.ndarray:
        """Per-evaluation noise standard deviations for one ``dt`` block.

        ``average`` mode draws block noise at ``sigma0/sqrt(dt)``;
        ``resample`` mode draws a fresh value at ``sigma0/sqrt(t + dt)``.
        """
        s0 = np.array([self.sigma0_at(ev.theta) for ev in evs], dtype=float)
        if self.mode == "average":
            return s0 / math.sqrt(dt)
        t_new = np.array([ev.time for ev in evs], dtype=float) + dt
        return s0 / np.sqrt(t_new)

    def merge_external_batch(
        self,
        evs: Sequence[VertexEvaluation],
        dt: float,
        fvals: Sequence[float],
    ) -> None:
        """Merge one sampling block into *each* of ``evs`` — vectorized.

        Batch counterpart of :meth:`merge_external`: all per-point noise is
        drawn in a **single** rng call over the non-zero noise scales.  The
        generator consumes exactly the same stream as the scalar loop
        ``for ev, v in zip(evs, fvals): merge_external(ev, dt, v)`` — numpy
        draws a batch of normals element by element off the same bit
        stream, and points with ``sigma0 == 0`` never touch the generator
        on either path — so the merged evaluations are **bitwise
        identical** (the rng-stream parity suite pins this).  This is what
        lets every batching layer above (pool advance, ``--eval-batch``
        frames) amortize Python/rng overhead without perturbing a single
        trajectory.
        """
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        evs = list(evs)
        if len(evs) != len(fvals):
            raise ValueError(
                f"got {len(fvals)} values for {len(evs)} evaluations"
            )
        if not evs:
            return
        values = np.asarray(fvals, dtype=float)
        scales = self._noise_scales(evs, dt)
        noisy = values.copy()
        drawn = scales > 0.0
        if drawn.any():
            # one generator call for the whole batch; zero-sigma entries
            # are excluded exactly as the scalar path skips their draw
            noisy[drawn] += self.rng.normal(0.0, scales[drawn])
        self.n_underlying_calls += len(evs)
        self.total_sampling_time += dt * len(evs)
        if self.mode == "average":
            for ev, sample in zip(evs, noisy):
                ev.merge_block(dt, sample)
        else:  # resample
            for ev, g in zip(evs, noisy):
                ev.replace(ev.time + dt, g)

    def extend_many(self, evs: Sequence[VertexEvaluation], dt: float) -> None:
        """Sample every evaluation in ``evs`` for ``dt`` more seconds — batched.

        The pool-level batched advance: the underlying surface is evaluated
        through its vectorized :meth:`~repro.functions.suite.TestFunction.batch`
        kernel when it has one (one numpy call for the whole stack instead
        of ``len(evs)`` Python calls) and the noise for all points is drawn
        in one rng call via :meth:`merge_external_batch`.  Bitwise identical
        to ``for ev in evs: extend(ev, dt)`` — ``f`` is deterministic and
        never consumes this generator, so hoisting its calls ahead of the
        noise draws cannot reorder the stream.
        """
        evs = list(evs)
        if not evs:
            return
        batch = getattr(self.f, "batch", None)
        if batch is not None and len(evs) > 1:
            fvals = np.asarray(
                batch(np.array([ev.theta for ev in evs], dtype=float)), dtype=float
            )
        else:
            fvals = np.array([float(self.f(ev.theta)) for ev in evs], dtype=float)
        self.merge_external_batch(evs, dt, fvals)

    def batch_evaluate(
        self, thetas, time: float, labels: Optional[Sequence[str]] = None
    ) -> List[VertexEvaluation]:
        """Start and sample an evaluation at every row of ``thetas`` — batched.

        Convenience mirror of :meth:`evaluate` for a ``(n, d)`` stack: one
        vectorized surface call, one rng call for all the noise.
        """
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2:
            raise ValueError(f"thetas must be (n, d), got shape {thetas.shape}")
        if labels is None:
            labels = [""] * thetas.shape[0]
        evs = [self.start(t, label=lbl) for t, lbl in zip(thetas, labels)]
        self.extend_many(evs, time)
        return evs


class SamplingPool:
    """Set of concurrently-sampling evaluations sharing a virtual clock.

    In the paper's MW deployment every active vertex keeps its simulations
    running; "waiting" in the MN/PC algorithms therefore refines *all* active
    vertices at once while virtual wall time passes.  ``advance(dt)`` models
    exactly that.  Costs are separable: total sampling effort is
    ``len(active) * dt`` but elapsed wall time is only ``dt`` because the
    vertices sample in parallel on different processors.

    Parameters
    ----------
    func:
        The :class:`StochasticFunction` being optimized.
    warmup:
        Sampling time given to a vertex when it is activated, before the
        caller ever looks at it (an estimate needs ``t > 0``).
    concurrent:
        If True (the MW model), any passage of time refines every active
        vertex.  If False (the classical DET baseline), each evaluation is
        sampled only when explicitly targeted — a point is measured once with
        a fixed budget and never revisited.
    """

    def __init__(
        self,
        func: StochasticFunction,
        warmup: float = 1.0,
        concurrent: bool = True,
    ) -> None:
        if not (warmup > 0.0):
            raise ValueError(f"warmup must be > 0, got {warmup!r}")
        self.func = func
        self.warmup = float(warmup)
        self.concurrent = bool(concurrent)
        self.active: List[VertexEvaluation] = []
        self.n_activations = 0
        #: Optional sampling interceptor ``hook(evs, dt) -> [fval, ...]``.
        #: When set (by the ask/tell engine in :mod:`repro.core.base`),
        #: every sampling request is published as a round of proposals and
        #: the returned deterministic surface values are merged through
        #: :meth:`StochasticFunction.merge_external` in pool order.  ``None``
        #: (the default) samples locally via :meth:`StochasticFunction.extend`.
        self.sample_hook: Optional[
            Callable[[List[VertexEvaluation], float], List[float]]
        ] = None

    @property
    def clock(self) -> VirtualClock:
        return self.func.clock

    @property
    def now(self) -> float:
        return self.func.clock.now

    def activate(self, theta, label: str = "") -> VertexEvaluation:
        """Start sampling a new point; it receives the warmup time.

        Activation advances the clock by the warmup (the new simulation must
        run before it produces a usable estimate).  In concurrent mode the
        other active vertices refine for free while it runs.
        """
        ev = self.func.start(theta, label=label)
        self.active.append(ev)
        self.n_activations += 1
        if self.concurrent:
            self.advance(self.warmup)
        else:
            self._sample([ev], self.warmup)
            self.clock.advance(self.warmup)
        return ev

    def adopt(self, ev: VertexEvaluation) -> VertexEvaluation:
        """Add an existing evaluation to the active set (no time passes)."""
        if ev not in self.active:
            self.active.append(ev)
        return ev

    def deactivate(self, ev: VertexEvaluation) -> None:
        """Stop sampling ``ev`` (master directs a cessation of work)."""
        try:
            self.active.remove(ev)
        except ValueError:
            raise ValueError("evaluation is not active in this pool") from None

    def advance(self, dt: float, targets=None) -> float:
        """Let ``dt`` virtual seconds pass.

        In concurrent mode every active vertex samples for ``dt`` regardless
        of ``targets`` (independent simulations never pause).  In
        non-concurrent mode only the ``targets`` (default: none) receive
        sampling.  Returns the new clock time.
        """
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        if self.concurrent:
            extend = self.active
        else:
            extend = list(targets) if targets is not None else []
            for ev in extend:
                if ev not in self.active:
                    raise ValueError("target evaluation is not active in this pool")
        self._sample(extend, dt)
        return self.clock.advance(dt)

    def _sample(self, evs, dt: float) -> None:
        """Extend ``evs`` by ``dt``: locally, or through the ask/tell hook.

        Every sampling request of the pool funnels through here, which is
        what lets the ask/tell engine intercept *all* evaluation traffic by
        setting :attr:`sample_hook` — one hook call is one proposal round.
        Both paths run the batched sampling kernel (vectorized surface
        call where available, one rng draw for the whole round), which is
        bitwise identical to the historical per-evaluation loop — see
        :meth:`StochasticFunction.merge_external_batch`.
        """
        if not evs:
            return
        if self.sample_hook is None:
            self.func.extend_many(list(evs), dt)
            return
        values = self.sample_hook(list(evs), float(dt))
        self.func.merge_external_batch(list(evs), dt, values)

    def __len__(self) -> int:
        return len(self.active)

    def __contains__(self, ev: VertexEvaluation) -> bool:
        return ev in self.active
