"""Running estimate of the objective at one simplex vertex.

A :class:`VertexEvaluation` is what the master sees about a vertex: the
current estimate of the objective, how long the vertex has been sampled, and
the (known or estimated) standard error of the estimate.  The merge math
implements the consistent "continue sampling" estimator: if the current mean
after time ``t`` is extended with an independent block sampled for ``dt``
(whose own mean has variance ``sigma0**2/dt``), the precision-weighted merge

    m_new = (t * m + dt * s) / (t + dt)

is distributed exactly ``N(f, sigma0**2 / (t + dt))`` — sampling longer makes
the measurement more reliable, as in the paper.

When ``sigma0`` is not known ahead of time (the realistic case, §1.1: "there
is no expectation that this variance is known ahead of time") it is estimated
from the scatter of the block samples with the precision-weighted variance
estimator; the estimate needs at least two blocks.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class VertexEvaluation:
    """Accumulating objective estimate at a point in parameter space.

    Parameters
    ----------
    theta:
        Parameter-space coordinates of the point.
    sigma0:
        True inherent noise scale if known (controlled experiments), else
        ``None`` and the scale is estimated from block scatter.
    sigma0_guess:
        Prior used for the standard error before enough blocks (>= 2) have
        been observed in the estimated-``sigma0`` regime.
    label:
        Optional human-readable tag (e.g. ``"ref"``, ``"v3"``) used in traces.
    """

    __slots__ = (
        "theta",
        "time",
        "estimate",
        "sigma0",
        "sigma0_guess",
        "label",
        "n_blocks",
        "_sum_wx2",
    )

    def __init__(
        self,
        theta,
        sigma0: Optional[float] = None,
        sigma0_guess: float = 1.0,
        label: str = "",
    ) -> None:
        self.theta = np.array(theta, dtype=float, copy=True)
        self.theta.setflags(write=False)
        if sigma0 is not None and not (float(sigma0) >= 0.0):
            raise ValueError(f"sigma0 must be >= 0, got {sigma0!r}")
        self.sigma0 = None if sigma0 is None else float(sigma0)
        self.sigma0_guess = float(sigma0_guess)
        self.label = label
        self.time = 0.0
        self.estimate = math.nan
        self.n_blocks = 0
        self._sum_wx2 = 0.0  # sum of dt_j * s_j**2 over blocks

    # -- state -------------------------------------------------------------

    @property
    def started(self) -> bool:
        """Whether at least one sample block has been merged."""
        return self.n_blocks > 0

    def merge_block(self, dt: float, sample: float) -> None:
        """Merge one block: a mean observed over ``dt`` extra seconds.

        ``sample`` is the block's own estimate of ``f(theta)`` (an unbiased
        mean with variance ``sigma0**2/dt``); the running estimate becomes the
        precision-weighted combination of all blocks so far.
        """
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        sample = float(sample)
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample!r}")
        new_time = self.time + dt
        if self.n_blocks == 0:
            self.estimate = sample
        else:
            self.estimate = (self.time * self.estimate + dt * sample) / new_time
        self.time = new_time
        self.n_blocks += 1
        self._sum_wx2 += dt * sample * sample

    def replace(self, time: float, value: float) -> None:
        """Overwrite the estimate (used by the ``resample`` estimator mode).

        The paper's controlled experiments "added artificial Gaussian noise
        with a variance inversely proportional to the duration for which the
        vertex had been active" — i.e. each look at the vertex is a fresh draw
        at the current precision rather than a merged average.
        """
        time = float(time)
        if not (time > 0.0):
            raise ValueError(f"time must be > 0, got {time!r}")
        self.time = time
        self.estimate = float(value)
        self.n_blocks += 1

    # -- uncertainty ---------------------------------------------------------

    def sigma0_estimate(self) -> float:
        """Estimate of the inherent noise scale from block scatter.

        Uses ``sum_j dt_j (s_j - m)**2 / (n - 1)`` which is unbiased for
        ``sigma0**2`` because each block mean has variance ``sigma0**2/dt_j``.
        Falls back to ``sigma0_guess`` with fewer than two blocks.
        """
        if self.sigma0 is not None:
            return self.sigma0
        if self.n_blocks < 2 or self.time <= 0.0:
            return self.sigma0_guess
        ss = self._sum_wx2 - self.time * self.estimate * self.estimate
        if ss <= 0.0:  # numerical cancellation on (near-)noiseless data
            return 0.0
        return math.sqrt(ss / (self.n_blocks - 1))

    @property
    def sem(self) -> float:
        """Standard error of the current estimate, ``sigma0/sqrt(t)``."""
        if self.time <= 0.0:
            return math.inf
        return self.sigma0_estimate() / math.sqrt(self.time)

    @property
    def variance(self) -> float:
        """Variance of the current estimate, ``sigma0**2/t``."""
        s = self.sem
        return s * s if math.isfinite(s) else math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = f" {self.label!r}" if self.label else ""
        return (
            f"<VertexEvaluation{lbl} g={self.estimate:.6g} "
            f"t={self.time:.3g} sem={self.sem:.3g}>"
        )
