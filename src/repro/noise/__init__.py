"""Stochastic-evaluation substrate.

Implements the paper's noise model (eqs. 1.1-1.2): an observed objective value
is the underlying deterministic value plus Gaussian sampling noise whose
variance decays as ``sigma0**2 / t`` with the virtual time ``t`` a point has
been sampled.  The classes here are the only thing the optimizers see about
"simulations": a :class:`VertexEvaluation` carries ``(theta, estimate, t,
sigma)`` and a :class:`SamplingPool` lets an algorithm keep several points
sampling concurrently while a :class:`VirtualClock` accounts for elapsed
virtual wall time.
"""

from repro.noise.clock import VirtualClock
from repro.noise.model import NoiseModel
from repro.noise.evaluation import VertexEvaluation
from repro.noise.stochastic import SamplingPool, StochasticFunction

__all__ = [
    "NoiseModel",
    "SamplingPool",
    "StochasticFunction",
    "VertexEvaluation",
    "VirtualClock",
]
