"""repro — automated, parallel optimization algorithms for stochastic functions.

A from-scratch Python reproduction of Chahal (2011): the MN / PC / PC+MN
stochastic variants of the Nelder-Mead downhill simplex, the DET and Anderson
baselines, the MW master-worker parallel framework they run on, a virtual
cluster model for the scale-up study, and the TIP4P liquid-water
parameterization application (mini molecular-dynamics engine + calibrated
surrogate).

Quickstart::

    from repro import optimize
    result = optimize("rosenbrock", dim=3, algorithm="PC",
                      sigma0=100.0, seed=0, walltime=1e5)
    print(result.best_theta, result.best_estimate)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    ALGORITHMS,
    AndersonSimplex,
    ConditionSet,
    DET,
    MN,
    MaxNoise,
    NelderMead,
    OptimizationResult,
    PC,
    PCMN,
    PCMaxNoise,
    PointComparison,
    Simplex,
    optimize,
)
from repro.noise import (
    NoiseModel,
    SamplingPool,
    StochasticFunction,
    VertexEvaluation,
    VirtualClock,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AndersonSimplex",
    "ConditionSet",
    "DET",
    "MN",
    "MaxNoise",
    "NelderMead",
    "NoiseModel",
    "OptimizationResult",
    "PC",
    "PCMN",
    "PCMaxNoise",
    "PointComparison",
    "SamplingPool",
    "Simplex",
    "StochasticFunction",
    "VertexEvaluation",
    "VirtualClock",
    "optimize",
    "__version__",
]
