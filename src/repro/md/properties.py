"""Property estimators: the six observables of the paper's cost function.

The paper fits two thermodynamic properties (average internal energy <U> and
average pressure <P>), one dynamic property (the self-diffusion coefficient D
from the mean-squared displacement) and three structural properties (the
gOO, gOH and gHH radial distribution functions reduced to RMS residuals).
This module measures all of them from trajectory frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.md.cell import PeriodicBox
from repro.md.units import KB, KCAL_TO_KJ, PRESSURE_CONV, kinetic_energy

#: A^2/fs -> cm^2/s for diffusion coefficients.
DIFFUSION_CONV = 1.0e-1


def radial_distribution(
    pos_a: np.ndarray,
    pos_b: Optional[np.ndarray],
    box: PeriodicBox,
    r_max: float,
    n_bins: int = 60,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-frame radial distribution g(r) between site sets A and B.

    ``pos_b=None`` means A-A (self) pairs.  Returns ``(r_centers, g)`` with
    the ideal-gas normalization, so g -> 1 at large r in a homogeneous
    system.  ``r_max`` must respect the minimum-image bound.
    """
    if r_max <= 0.0 or r_max > box.min_image_cutoff + 1e-9:
        raise ValueError(
            f"r_max must be in (0, {box.min_image_cutoff:.3f}], got {r_max}"
        )
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    same = pos_b is None
    if same:
        n = pos_a.shape[0]
        ii, jj = np.triu_indices(n, k=1)
        d = box.minimum_image(pos_a[ii] - pos_a[jj])
        n_pairs_ideal = n * (n - 1) / 2.0
    else:
        d = box.minimum_image(pos_a[:, None, :] - pos_b[None, :, :]).reshape(-1, 3)
        n_pairs_ideal = pos_a.shape[0] * pos_b.shape[0]
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts, _ = np.histogram(r, bins=edges)
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density_pairs = n_pairs_ideal / box.volume
    ideal = density_pairs * shell_volumes
    centers = 0.5 * (edges[:-1] + edges[1:])
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, counts / ideal, 0.0)
    return centers, g


def diffusion_coefficient(times_fs: np.ndarray, msd_a2: np.ndarray) -> float:
    """Self-diffusion coefficient in cm^2/s from an MSD series.

    Least-squares slope of MSD(t) (through the origin is not forced; the
    intercept absorbs ballistic transients), divided by 6, converted from
    A^2/fs.
    """
    times_fs = np.asarray(times_fs, dtype=float)
    msd_a2 = np.asarray(msd_a2, dtype=float)
    if times_fs.shape != msd_a2.shape or times_fs.ndim != 1:
        raise ValueError("times and msd must be equal-length 1-d arrays")
    if times_fs.size < 2:
        raise ValueError("need at least 2 points for a slope")
    slope, _ = np.polyfit(times_fs, msd_a2, 1)
    return float(slope / 6.0 * DIFFUSION_CONV)


@dataclass
class PropertyAccumulator:
    """Accumulates per-frame observations during a production run.

    Feeds on ``(system, force_result, time_fs)`` frames; produces the
    property dictionary the water cost function consumes: mean internal
    energy (kJ/mol per molecule), mean pressure (atm), diffusion coefficient
    (cm^2/s) and the three averaged RDFs.
    """

    r_max: float
    n_bins: int = 60
    _u_samples: List[float] = field(default_factory=list)
    _p_samples: List[float] = field(default_factory=list)
    _t_samples: List[float] = field(default_factory=list)
    _rdf_sums: Dict[str, np.ndarray] = field(default_factory=dict)
    _rdf_frames: int = 0
    _r_centers: Optional[np.ndarray] = None
    _initial_oxygens: Optional[np.ndarray] = None
    _msd_times: List[float] = field(default_factory=list)
    _msd_values: List[float] = field(default_factory=list)

    def observe(self, system, result, time_fs: float) -> None:
        """Record one frame."""
        n_mol = system.n_molecules
        kin = kinetic_energy(system.vel, system.masses)
        pot = result.potential_energy
        # internal energy per molecule, kJ/mol (paper reports ~ -41.8)
        self._u_samples.append((pot + kin) * KCAL_TO_KJ / n_mol)
        # virial pressure: P = (2K + W) / (3V), converted to atm
        p = (2.0 * kin + result.virial) / (3.0 * system.box.volume)
        self._p_samples.append(p * PRESSURE_CONV)
        from repro.md.units import kinetic_temperature

        self._t_samples.append(
            kinetic_temperature(system.vel, system.masses, n_constrained=3)
        )
        # RDFs
        O = system.pos[0::3]
        H = np.concatenate([system.pos[1::3], system.pos[2::3]])
        for name, (a, b) in {
            "goo": (O, None),
            "goh": (O, H),
            "ghh": (H, None),
        }.items():
            centers, g = radial_distribution(
                a, b, system.box, self.r_max, self.n_bins
            )
            self._r_centers = centers
            if name not in self._rdf_sums:
                self._rdf_sums[name] = np.zeros_like(g)
            self._rdf_sums[name] += g
        self._rdf_frames += 1
        # MSD of oxygens (positions are unwrapped)
        if self._initial_oxygens is None:
            self._initial_oxygens = O.copy()
            self._t0 = time_fs
        disp = O - self._initial_oxygens
        self._msd_times.append(time_fs - self._t0)
        self._msd_values.append(float(np.mean(np.einsum("ij,ij->i", disp, disp))))

    @property
    def n_frames(self) -> int:
        return self._rdf_frames

    def results(self) -> Dict[str, object]:
        """Final property estimates with standard errors."""
        if not self._u_samples:
            raise ValueError("no frames observed")
        u = np.array(self._u_samples)
        p = np.array(self._p_samples)
        t = np.array(self._t_samples)
        n = len(u)
        sem = lambda x: float(np.std(x) / np.sqrt(max(n - 1, 1)))  # noqa: E731
        out: Dict[str, object] = {
            "energy": float(u.mean()),
            "energy_sem": sem(u),
            "pressure": float(p.mean()),
            "pressure_sem": sem(p),
            "temperature": float(t.mean()),
            "n_frames": n,
            "r": self._r_centers,
        }
        for name, total in self._rdf_sums.items():
            out[name] = total / self._rdf_frames
        if len(self._msd_times) >= 2:
            out["diffusion"] = diffusion_coefficient(
                np.array(self._msd_times), np.array(self._msd_values)
            )
        else:
            out["diffusion"] = float("nan")
        return out
