"""Time integration: velocity Verlet plus a Berendsen thermostat.

The paper's simulations are an NVT equilibration followed by an NVE
production run.  Velocity Verlet is the standard symplectic choice; the
Berendsen weak-coupling thermostat drives the equilibration temperature and
is switched off for production.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.md.forcefield import ForceFieldResult, TIP4PForceField
from repro.md.system import WaterSystem
from repro.md.units import ACCEL_CONV, kinetic_temperature


class VelocityVerlet:
    """Velocity-Verlet integrator bound to a force field.

    Parameters
    ----------
    forcefield:
        Evaluator providing ``compute(pos, box)``.
    dt:
        Timestep in femtoseconds.  The flexible OH bonds oscillate with a
        ~9 fs period, so dt should stay <= 0.5 fs.
    """

    def __init__(self, forcefield: TIP4PForceField, dt: float = 0.5) -> None:
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt}")
        self.forcefield = forcefield
        self.dt = float(dt)
        self.n_steps = 0

    def forces(self, system: WaterSystem) -> ForceFieldResult:
        return self.forcefield.compute(system.pos, system.box)

    def step(
        self, system: WaterSystem, current: ForceFieldResult
    ) -> ForceFieldResult:
        """Advance one dt in place; returns the new force evaluation."""
        dt = self.dt
        inv_m = (ACCEL_CONV / system.masses)[:, None]
        half_kick = 0.5 * dt * current.forces * inv_m
        system.vel += half_kick
        system.pos += dt * system.vel
        new = self.forcefield.compute(system.pos, system.box)
        system.vel += 0.5 * dt * new.forces * inv_m
        self.n_steps += 1
        return new

    def run(
        self,
        system: WaterSystem,
        n_steps: int,
        thermostat: Optional["BerendsenThermostat"] = None,
        callback=None,
        current: Optional[ForceFieldResult] = None,
    ) -> ForceFieldResult:
        """Integrate ``n_steps``; optionally thermostat and per-step callback.

        ``callback(step_index, system, result)`` runs after each step.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        result = current if current is not None else self.forces(system)
        for i in range(n_steps):
            result = self.step(system, result)
            if thermostat is not None:
                thermostat.apply(system, self.dt)
            if callback is not None:
                callback(i, system, result)
        return result


class BerendsenThermostat:
    """Weak-coupling velocity rescaling toward a target temperature.

    ``lambda = sqrt(1 + (dt/tau) (T0/T - 1))``, clamped to avoid violent
    rescaling when the instantaneous temperature is far from target.
    """

    def __init__(
        self, temperature: float, tau: float = 100.0, max_scale: float = 1.2
    ) -> None:
        if not (temperature > 0.0):
            raise ValueError(f"temperature must be > 0, got {temperature}")
        if not (tau > 0.0):
            raise ValueError(f"tau must be > 0, got {tau}")
        if not (max_scale > 1.0):
            raise ValueError(f"max_scale must be > 1, got {max_scale}")
        self.temperature = float(temperature)
        self.tau = float(tau)
        self.max_scale = float(max_scale)

    def apply(self, system: WaterSystem, dt: float) -> float:
        """Rescale velocities in place; returns the scale factor used."""
        t_now = kinetic_temperature(system.vel, system.masses, n_constrained=3)
        if t_now <= 0.0:
            return 1.0
        lam2 = 1.0 + (dt / self.tau) * (self.temperature / t_now - 1.0)
        lam = math.sqrt(max(lam2, 0.0))
        lam = min(max(lam, 1.0 / self.max_scale), self.max_scale)
        system.vel *= lam
        return lam
