"""Water-box construction and system state.

Molecules are placed on a cubic lattice with random orientations (the
paper's user supplies "a starting configuration"; this builder generates a
reasonable one), with initial velocities drawn from the Maxwell-Boltzmann
distribution at the requested temperature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.md.cell import PeriodicBox
from repro.md.forcefield import MASS_H, MASS_O, WaterParameters
from repro.md.units import maxwell_boltzmann_velocities

#: Molar mass of water, g/mol.
WATER_MOLAR_MASS = 2 * MASS_H + MASS_O

#: Avogadro x cm^3/A^3 bookkeeping: volume per molecule in A^3 at density rho
#: (g/cm^3) is  M / (rho * 0.60221408).
_VOLUME_FACTOR = 0.60221408


def volume_per_molecule(density: float) -> float:
    """A^3 per water molecule at the given density in g/cm^3."""
    if density <= 0.0:
        raise ValueError(f"density must be > 0, got {density}")
    return WATER_MOLAR_MASS / (density * _VOLUME_FACTOR)


@dataclass
class WaterSystem:
    """Mutable MD state: positions (unwrapped), velocities, masses, box."""

    params: WaterParameters
    box: PeriodicBox
    pos: np.ndarray   # (3 n_mol, 3), order O,H1,H2 per molecule; unwrapped
    vel: np.ndarray   # (3 n_mol, 3)
    masses: np.ndarray  # (3 n_mol,)

    def __post_init__(self) -> None:
        n = self.pos.shape[0]
        if n % 3 != 0:
            raise ValueError("site count must be a multiple of 3 (O,H1,H2)")
        if self.vel.shape != self.pos.shape:
            raise ValueError("velocity shape must match positions")
        if self.masses.shape != (n,):
            raise ValueError("masses must be one per site")

    @property
    def n_molecules(self) -> int:
        return self.pos.shape[0] // 3

    @property
    def oxygen_positions(self) -> np.ndarray:
        return self.pos[0::3]

    def copy(self) -> "WaterSystem":
        return WaterSystem(
            params=self.params,
            box=self.box,
            pos=self.pos.copy(),
            vel=self.vel.copy(),
            masses=self.masses.copy(),
        )


def _molecule_template(params: WaterParameters) -> np.ndarray:
    """One water at the origin in its equilibrium geometry, O at (0,0,0)."""
    half = params.theta / 2.0
    r = params.r_oh
    return np.array(
        [
            [0.0, 0.0, 0.0],
            [r * math.sin(half), r * math.cos(half), 0.0],
            [-r * math.sin(half), r * math.cos(half), 0.0],
        ]
    )


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix, sign-fixed)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def build_water_box(
    n_molecules: int,
    params: Optional[WaterParameters] = None,
    density: float = 0.997,
    temperature: float = 298.0,
    rng: np.random.Generator | int | None = None,
) -> WaterSystem:
    """Lattice-packed water box at the given density and temperature.

    Molecules sit on a simple cubic lattice (the smallest lattice holding
    ``n_molecules``) with uniformly random orientations; velocities are
    Maxwell-Boltzmann at ``temperature`` with zero total momentum.
    """
    if n_molecules < 1:
        raise ValueError(f"n_molecules must be >= 1, got {n_molecules}")
    params = params if params is not None else WaterParameters()
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    box_len = (n_molecules * volume_per_molecule(density)) ** (1.0 / 3.0)
    box = PeriodicBox(box_len)
    cells = math.ceil(n_molecules ** (1.0 / 3.0))
    spacing = box_len / cells
    template = _molecule_template(params)
    pos = np.empty((3 * n_molecules, 3))
    mol = 0
    for ix in range(cells):
        for iy in range(cells):
            for iz in range(cells):
                if mol >= n_molecules:
                    break
                origin = (np.array([ix, iy, iz]) + 0.5) * spacing
                rot = _random_rotation(gen)
                pos[3 * mol : 3 * mol + 3] = template @ rot.T + origin
                mol += 1
    masses = np.empty(3 * n_molecules)
    masses[0::3] = MASS_O
    masses[1::3] = MASS_H
    masses[2::3] = MASS_H
    vel = maxwell_boltzmann_velocities(masses, temperature, gen)
    return WaterSystem(params=params, box=box, pos=pos, vel=vel, masses=masses)
