"""The paper's two-phase simulation protocol (§3.5).

"An initial configuration is used to perform an MD equilibration in the NVT
ensemble.  The output of this simulation is used to perform a production run
in the NVE ensemble" from which pair correlation functions and thermodynamic
properties are evaluated.  :func:`run_water_simulation` packages the whole
pipeline — build box, NVT equilibrate, NVE produce, measure — as a single
callable suitable for a vertex-server *system* (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.md.forcefield import TIP4PForceField, WaterParameters
from repro.md.integrators import BerendsenThermostat, VelocityVerlet
from repro.md.properties import PropertyAccumulator
from repro.md.system import WaterSystem, build_water_box


@dataclass(frozen=True)
class SimulationProtocol:
    """Knobs of the NVT -> NVE pipeline (laptop-sized defaults)."""

    n_molecules: int = 32
    temperature: float = 298.0
    density: float = 0.997
    dt: float = 0.5               # fs
    n_equilibration: int = 200    # NVT steps
    n_production: int = 400       # NVE steps
    sample_every: int = 10        # frames between property observations
    thermostat_tau: float = 50.0  # fs
    cutoff: Optional[float] = None
    rdf_bins: int = 50

    def __post_init__(self) -> None:
        if self.n_molecules < 2:
            raise ValueError("need >= 2 molecules for pair properties")
        if self.n_equilibration < 0 or self.n_production < 1:
            raise ValueError("phase lengths must be non-negative / positive")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")


def run_water_simulation(
    params: WaterParameters,
    protocol: SimulationProtocol = SimulationProtocol(),
    rng: np.random.Generator | int | None = None,
    system: Optional[WaterSystem] = None,
) -> Dict[str, object]:
    """Full pipeline: returns the property dict of the production run.

    A pre-built (e.g. pre-equilibrated) ``system`` can be supplied to skip
    box construction — the phase structure the $OPTROOT runner drives.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if system is None:
        system = build_water_box(
            protocol.n_molecules,
            params=params,
            density=protocol.density,
            temperature=protocol.temperature,
            rng=gen,
        )
    ff = TIP4PForceField(params, system.n_molecules, cutoff=protocol.cutoff)
    integrator = VelocityVerlet(ff, dt=protocol.dt)

    # ---- phase 1: NVT equilibration -------------------------------------
    thermostat = BerendsenThermostat(protocol.temperature, tau=protocol.thermostat_tau)
    result = integrator.run(system, protocol.n_equilibration, thermostat=thermostat)

    # ---- phase 2: NVE production with property sampling --------------------
    r_max = min(system.box.min_image_cutoff, 0.999 * system.box.min_image_cutoff)
    accumulator = PropertyAccumulator(r_max=r_max, n_bins=protocol.rdf_bins)

    def observe(step: int, sys_: WaterSystem, res) -> None:
        if (step + 1) % protocol.sample_every == 0:
            accumulator.observe(sys_, res, time_fs=(step + 1) * protocol.dt)

    integrator.run(
        system, protocol.n_production, callback=observe, current=result
    )
    out = accumulator.results()
    out["n_molecules"] = system.n_molecules
    out["box_length"] = float(system.box.lengths[0])
    return out
