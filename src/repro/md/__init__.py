"""Miniature molecular-dynamics engine (the paper's application substrate).

The paper evaluates its optimizers by reparameterizing the TIP4P model of
liquid water with real MD (NVT equilibration + NVE production, §3.5).  This
package is a genuine, from-scratch MD code sized for laptop scales: 4-site
TIP4P-geometry water with stiff harmonic intramolecular terms standing in
for rigid constraints (documented substitution, DESIGN.md §2), Lennard-Jones
oxygen sites, point charges on H/H/M with exact linear-virtual-site force
redistribution, minimum-image periodic boundaries, velocity-Verlet
integration, a Berendsen thermostat, and estimators for every property the
paper's cost function uses (internal energy, virial pressure, diffusion
coefficient from MSD, radial distribution functions).

Internal unit system: Angstrom / femtosecond / amu / kcal-per-mol
(:mod:`repro.md.units` holds the conversion constants).
"""

from repro.md.units import (
    ACCEL_CONV,
    COULOMB_CONST,
    KB,
    KCAL_TO_KJ,
    PRESSURE_CONV,
    kinetic_temperature,
    maxwell_boltzmann_velocities,
)
from repro.md.cell import PeriodicBox
from repro.md.forcefield import TIP4PForceField, WaterParameters
from repro.md.system import WaterSystem, build_water_box
from repro.md.neighbors import brute_force_pairs, cell_list_pairs
from repro.md.integrators import BerendsenThermostat, VelocityVerlet
from repro.md.properties import (
    PropertyAccumulator,
    diffusion_coefficient,
    radial_distribution,
)
from repro.md.simulation import SimulationProtocol, run_water_simulation

__all__ = [
    "ACCEL_CONV",
    "BerendsenThermostat",
    "COULOMB_CONST",
    "KB",
    "KCAL_TO_KJ",
    "PRESSURE_CONV",
    "PeriodicBox",
    "PropertyAccumulator",
    "SimulationProtocol",
    "TIP4PForceField",
    "VelocityVerlet",
    "WaterParameters",
    "WaterSystem",
    "brute_force_pairs",
    "build_water_box",
    "cell_list_pairs",
    "diffusion_coefficient",
    "kinetic_temperature",
    "maxwell_boltzmann_velocities",
    "radial_distribution",
    "run_water_simulation",
]
