"""Unit system and physical constants for the MD engine.

Internal units: length in Angstrom (A), time in femtoseconds (fs), mass in
atomic mass units (amu, g/mol), energy in kcal/mol, charge in elementary
charges (e), temperature in Kelvin.

Derived conversions (validated in the unit tests):

* acceleration: ``a [A/fs^2] = ACCEL_CONV * F [kcal/mol/A] / m [amu]``
* Coulomb energy: ``E = COULOMB_CONST * q1 q2 / r`` (kcal/mol with e and A)
* pressure: ``P [atm] = PRESSURE_CONV * p [kcal/mol/A^3]``
* kinetic energy from velocities: ``K = 0.5 * sum(m v^2) / ACCEL_CONV``
  (because v^2 in A^2/fs^2 over amu must return kcal/mol)
"""

from __future__ import annotations

import numpy as np

#: Boltzmann constant, kcal/(mol K).
KB = 1.987204259e-3

#: kcal/mol -> kJ/mol.
KCAL_TO_KJ = 4.184

#: Coulomb prefactor, kcal A / (mol e^2).
COULOMB_CONST = 332.06371

#: (kcal/mol/A per amu) -> A/fs^2.
ACCEL_CONV = 4.184e-4

#: kcal/mol/A^3 -> atm.
PRESSURE_CONV = 68568.4


def kinetic_energy(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Kinetic energy in kcal/mol from A/fs velocities and amu masses."""
    v2 = np.einsum("ij,ij->i", velocities, velocities)
    return float(0.5 * np.dot(masses, v2) / ACCEL_CONV)


def kinetic_temperature(
    velocities: np.ndarray, masses: np.ndarray, n_constrained: int = 0
) -> float:
    """Instantaneous temperature in K.

    ``n_constrained`` degrees of freedom are subtracted from ``3N`` (e.g. 3
    for removed centre-of-mass drift).
    """
    n_dof = 3 * velocities.shape[0] - n_constrained
    if n_dof <= 0:
        raise ValueError("no free degrees of freedom")
    return 2.0 * kinetic_energy(velocities, masses) / (n_dof * KB)


def maxwell_boltzmann_velocities(
    masses: np.ndarray,
    temperature: float,
    rng: np.random.Generator,
    zero_momentum: bool = True,
) -> np.ndarray:
    """Draw velocities (A/fs) at the requested temperature.

    Per-component variance is ``kB T / m`` in energy-consistent units; the
    ACCEL_CONV factor converts (kcal/mol)/amu into A^2/fs^2.  With
    ``zero_momentum`` the centre-of-mass drift is removed and the velocities
    rescaled back to exactly the target temperature.
    """
    if temperature < 0.0:
        raise ValueError(f"temperature must be >= 0, got {temperature}")
    n = masses.shape[0]
    if temperature == 0.0:
        return np.zeros((n, 3))
    std = np.sqrt(KB * temperature / masses * ACCEL_CONV)
    vel = rng.normal(size=(n, 3)) * std[:, None]
    if zero_momentum and n > 1:
        p = (masses[:, None] * vel).sum(axis=0) / masses.sum()
        vel -= p[None, :]
        current = kinetic_temperature(vel, masses, n_constrained=3)
        if current > 0:
            vel *= np.sqrt(temperature / current)
    return vel
