"""Neighbour-pair enumeration: brute force and linked cells.

``brute_force_pairs`` is the O(N^2) reference; ``cell_list_pairs`` bins sites
into cells of edge >= cutoff and only examines the 27-cell neighbourhood —
O(N) for homogeneous systems.  Both return identical (i < j) pair sets (the
equivalence is property-tested), so the force field can switch providers for
larger boxes without changing physics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.cell import PeriodicBox


def brute_force_pairs(
    positions: np.ndarray, box: PeriodicBox, cutoff: float
) -> Tuple[np.ndarray, np.ndarray]:
    """All (i < j) pairs with minimum-image distance < cutoff."""
    if cutoff <= 0.0:
        raise ValueError(f"cutoff must be > 0, got {cutoff}")
    n = positions.shape[0]
    ii, jj = np.triu_indices(n, k=1)
    d = box.minimum_image(positions[ii] - positions[jj])
    r2 = np.einsum("ij,ij->i", d, d)
    mask = r2 < cutoff * cutoff
    return ii[mask], jj[mask]


def cell_list_pairs(
    positions: np.ndarray, box: PeriodicBox, cutoff: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Linked-cell pair enumeration; equivalent to brute force.

    Falls back to brute force when the box is too small for 3 cells per
    dimension (the cell method needs >= 3 to avoid double counting through
    periodic images).
    """
    if cutoff <= 0.0:
        raise ValueError(f"cutoff must be > 0, got {cutoff}")
    n_cells = np.floor(box.lengths / cutoff).astype(int)
    # more cells than ~N is pure overhead (and a tiny cutoff could demand
    # billions); larger cells are always correct, so cap the grid
    max_per_dim = max(3, int(np.ceil(4 * positions.shape[0] ** (1.0 / 3.0))))
    n_cells = np.minimum(n_cells, max_per_dim)
    if np.any(n_cells < 3):
        return brute_force_pairs(positions, box, cutoff)
    wrapped = box.wrap(positions)
    cell_size = box.lengths / n_cells
    coords = np.minimum((wrapped / cell_size).astype(int), n_cells - 1)
    # cell id -> member list
    cell_ids = (
        coords[:, 0] * n_cells[1] * n_cells[2] + coords[:, 1] * n_cells[2] + coords[:, 2]
    )
    order = np.argsort(cell_ids, kind="stable")
    sorted_ids = cell_ids[order]
    boundaries = np.searchsorted(
        sorted_ids, np.arange(n_cells.prod() + 1), side="left"
    )

    def members(cx: int, cy: int, cz: int) -> np.ndarray:
        cid = cx * n_cells[1] * n_cells[2] + cy * n_cells[2] + cz
        return order[boundaries[cid] : boundaries[cid + 1]]

    out_i = []
    out_j = []
    cutoff2 = cutoff * cutoff
    for cx in range(n_cells[0]):
        for cy in range(n_cells[1]):
            for cz in range(n_cells[2]):
                home = members(cx, cy, cz)
                if home.size == 0:
                    continue
                # half the neighbourhood (13 cells + self) avoids duplicates
                neigh_cells = []
                for ox, oy, oz in _HALF_NEIGHBOURHOOD:
                    nx = (cx + ox) % n_cells[0]
                    ny = (cy + oy) % n_cells[1]
                    nz = (cz + oz) % n_cells[2]
                    neigh_cells.append(members(nx, ny, nz))
                # self-cell pairs
                if home.size > 1:
                    a, b = np.triu_indices(home.size, k=1)
                    out_i.append(home[a])
                    out_j.append(home[b])
                # cross-cell pairs
                if neigh_cells:
                    other = np.concatenate(neigh_cells)
                    if other.size:
                        gi = np.repeat(home, other.size)
                        gj = np.tile(other, home.size)
                        out_i.append(gi)
                        out_j.append(gj)
    if not out_i:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    ii = np.concatenate(out_i)
    jj = np.concatenate(out_j)
    d = box.minimum_image(positions[ii] - positions[jj])
    r2 = np.einsum("ij,ij->i", d, d)
    mask = r2 < cutoff2
    ii, jj = ii[mask], jj[mask]
    swap = ii > jj
    ii[swap], jj[swap] = jj[swap], ii[swap].copy()
    return ii, jj


#: offsets covering half the 3x3x3 neighbourhood (13 cells), so each cell
#: pair is visited exactly once.
_HALF_NEIGHBOURHOOD = [
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
]
