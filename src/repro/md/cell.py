"""Orthorhombic periodic simulation cell with minimum-image convention."""

from __future__ import annotations

import numpy as np


class PeriodicBox:
    """Axis-aligned periodic box.

    Parameters
    ----------
    lengths:
        Box edge lengths (scalar for cubic, or length-3 vector), in Angstrom.
    """

    __slots__ = ("lengths",)

    def __init__(self, lengths) -> None:
        arr = np.asarray(lengths, dtype=float)
        if arr.ndim == 0:
            arr = np.full(3, float(arr))
        if arr.shape != (3,):
            raise ValueError(f"lengths must be scalar or length-3, got {arr.shape}")
        if np.any(arr <= 0.0):
            raise ValueError(f"box lengths must be positive, got {arr}")
        self.lengths = arr.copy()
        self.lengths.setflags(write=False)

    @property
    def volume(self) -> float:
        """Box volume in A^3."""
        return float(np.prod(self.lengths))

    @property
    def min_image_cutoff(self) -> float:
        """Largest interaction cutoff consistent with minimum image."""
        return float(self.lengths.min() / 2.0)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell [0, L)."""
        return np.mod(positions, self.lengths)

    def minimum_image(self, displacements: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        return displacements - self.lengths * np.round(displacements / self.lengths)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Minimum-image distance between two points."""
        d = self.minimum_image(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        return float(np.linalg.norm(d))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeriodicBox({self.lengths.tolist()})"
