"""TIP4P-geometry water force field (paper §3.5, Fig. 3.19).

Interactions:

* Lennard-Jones between oxygen sites of different molecules,
  ``4 eps [(sigma/r)^12 - (sigma/r)^6]``, truncated (and optionally energy-
  shifted) at a cutoff.  ``eps``/``sigma`` are two of the paper's three
  optimization parameters.
* Coulomb between the charge sites of different molecules.  TIP4P puts
  ``+qH`` on each hydrogen and ``-2 qH`` on the massless M site displaced
  0.15 A from the oxygen along the HOH bisector; ``qH`` is the third
  optimization parameter.
* Intramolecular stiff harmonic bonds and angle — the documented stand-in
  for TIP4P's rigid constraints (a flexible model with the TIP4P equilibrium
  geometry).

The M site is the *linear* virtual site ``M = (1-2a) O + a H1 + a H2`` with
``a`` chosen to give |OM| = d_OM at the equilibrium geometry; because it is a
fixed linear combination, distributing its force as ``F_O += (1-2a) F_M,
F_H += a F_M`` is exact (energy-conserving).

All pair interactions use the minimum-image convention; positions may be
unwrapped (the engine never wraps coordinates, which keeps MSD trivial).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.md.cell import PeriodicBox
from repro.md.units import COULOMB_CONST

MASS_O = 15.9994
MASS_H = 1.008


@dataclass(frozen=True)
class WaterParameters:
    """TIP4P-family parameter set.

    The published TIP4P values (Jorgensen et al. 1983) are the defaults:
    ``epsilon = 0.1550 kcal/mol``, ``sigma = 3.1536 A``, ``q_h = 0.5200 e``,
    with geometry r(OH) = 0.9572 A, HOH angle 104.52 deg, d(OM) = 0.15 A.
    """

    epsilon: float = 0.1550      # kcal/mol
    sigma: float = 3.1536        # A
    q_h: float = 0.5200          # e
    r_oh: float = 0.9572         # A
    theta_deg: float = 104.52    # degrees
    d_om: float = 0.15           # A
    k_bond: float = 450.0        # kcal/mol/A^2 (stiff harmonic OH)
    k_angle: float = 55.0        # kcal/mol/rad^2

    def __post_init__(self) -> None:
        if self.epsilon < 0.0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if self.r_oh <= 0.0:
            raise ValueError(f"r_oh must be > 0, got {self.r_oh}")
        if not (0.0 < self.theta_deg < 180.0):
            raise ValueError(f"theta_deg must be in (0, 180), got {self.theta_deg}")
        if self.d_om < 0.0:
            raise ValueError(f"d_om must be >= 0, got {self.d_om}")

    @property
    def q_m(self) -> float:
        """M-site charge (charge neutrality): -2 qH."""
        return -2.0 * self.q_h

    @property
    def theta(self) -> float:
        """Equilibrium HOH angle in radians."""
        return math.radians(self.theta_deg)

    @property
    def m_coeff(self) -> float:
        """Virtual-site coefficient ``a`` in ``M = O + a (H1-O) + a (H2-O)``.

        At equilibrium the bisector has length ``r_oh cos(theta/2)``, so
        ``a = d_om / (2 r_oh cos(theta/2))``.
        """
        bisector = self.r_oh * math.cos(self.theta / 2.0)
        return self.d_om / (2.0 * bisector)

    @classmethod
    def from_vector(cls, theta_vec, **fixed) -> "WaterParameters":
        """Build from the optimization vector ``(epsilon, sigma, q_h)``."""
        eps, sig, qh = (float(x) for x in np.asarray(theta_vec, dtype=float))
        return cls(epsilon=eps, sigma=sig, q_h=qh, **fixed)


@dataclass
class ForceFieldResult:
    """One force evaluation: energies by term, forces, virial."""

    energies: Dict[str, float]
    forces: np.ndarray    # (3 n_mol, 3) on real atoms (M redistributed)
    virial: float         # sum over pair terms of d . F, kcal/mol

    @property
    def potential_energy(self) -> float:
        return float(sum(self.energies.values()))


class TIP4PForceField:
    """Force/energy evaluator for a box of ``n_molecules`` waters.

    Atom layout: molecule ``i`` owns real atoms ``3i`` (O), ``3i+1`` (H1),
    ``3i+2`` (H2).  Charge sites are H1, H2 and the derived M site.

    Parameters
    ----------
    params:
        :class:`WaterParameters`.
    n_molecules:
        Number of waters (pair tables are precomputed).
    cutoff:
        Interaction cutoff in A; defaults to the caller-supplied box's
        minimum-image bound at compute time when None.
    shift:
        Energy-shift LJ and Coulomb at the cutoff (removes the step
        discontinuity; improves energy conservation under truncation).
    neighbor_method:
        ``"all_pairs"`` (default; precomputed pair tables, best for small
        boxes) or ``"cell_list"`` (linked cells, O(N) for large boxes).
        Both produce identical physics (equivalence is tested).
    """

    def __init__(
        self,
        params: WaterParameters,
        n_molecules: int,
        cutoff: Optional[float] = None,
        shift: bool = True,
        neighbor_method: str = "all_pairs",
    ) -> None:
        if n_molecules < 1:
            raise ValueError(f"n_molecules must be >= 1, got {n_molecules}")
        if cutoff is not None and cutoff <= 0.0:
            raise ValueError(f"cutoff must be > 0, got {cutoff}")
        if neighbor_method not in ("all_pairs", "cell_list"):
            raise ValueError(
                f"neighbor_method must be 'all_pairs' or 'cell_list', got {neighbor_method!r}"
            )
        self.params = params
        self.n_molecules = int(n_molecules)
        self.cutoff = cutoff
        self.shift = bool(shift)
        self.neighbor_method = neighbor_method
        n = self.n_molecules
        # oxygen-oxygen molecule pairs (i < j)
        self._oo_i, self._oo_j = np.triu_indices(n, k=1)
        # charge sites: per molecule H1, H2, M -> site index 3i, 3i+1, 3i+2
        ns = 3 * n
        ci, cj = np.triu_indices(ns, k=1)
        different_mol = (ci // 3) != (cj // 3)
        self._cs_i = ci[different_mol]
        self._cs_j = cj[different_mol]
        q = np.empty(ns)
        q[0::3] = params.q_h
        q[1::3] = params.q_h
        q[2::3] = params.q_m
        self._charges = q
        self._qq = COULOMB_CONST * q[self._cs_i] * q[self._cs_j]

    # -- geometry ---------------------------------------------------------------

    def m_sites(self, pos: np.ndarray) -> np.ndarray:
        """M-site positions from real-atom positions, shape (n_mol, 3)."""
        a = self.params.m_coeff
        O = pos[0::3]
        H1 = pos[1::3]
        H2 = pos[2::3]
        return O + a * (H1 - O) + a * (H2 - O)

    def _effective_cutoff(self, box: PeriodicBox) -> float:
        rc = self.cutoff if self.cutoff is not None else box.min_image_cutoff
        return min(rc, box.min_image_cutoff)

    # -- main entry -----------------------------------------------------------------

    def compute(self, pos: np.ndarray, box: PeriodicBox) -> ForceFieldResult:
        """Evaluate energies, forces and virial at the given positions."""
        n = self.n_molecules
        if pos.shape != (3 * n, 3):
            raise ValueError(f"positions must be ({3 * n}, 3), got {pos.shape}")
        rc = self._effective_cutoff(box)
        forces = np.zeros_like(pos)
        energies: Dict[str, float] = {}
        virial = 0.0

        # ---- Lennard-Jones, O-O --------------------------------------------
        e_lj, f_o, w = self._lennard_jones(pos[0::3], box, rc)
        energies["lj"] = e_lj
        forces[0::3] += f_o
        virial += w

        # ---- Coulomb over H1/H2/M charge sites -------------------------------
        csites = np.empty((3 * n, 3))
        csites[0::3] = pos[1::3]  # H1
        csites[1::3] = pos[2::3]  # H2
        csites[2::3] = self.m_sites(pos)
        e_c, f_sites, w = self._coulomb(csites, box, rc)
        energies["coulomb"] = e_c
        virial += w
        # distribute: H forces map directly; M forces redistribute exactly
        forces[1::3] += f_sites[0::3]
        forces[2::3] += f_sites[1::3]
        f_m = f_sites[2::3]
        a = self.params.m_coeff
        forces[0::3] += (1.0 - 2.0 * a) * f_m
        forces[1::3] += a * f_m
        forces[2::3] += a * f_m

        # ---- intramolecular ----------------------------------------------------
        e_b, f_b, w_b = self._bonds(pos)
        e_a, f_a, w_a = self._angles(pos)
        energies["bond"] = e_b
        energies["angle"] = e_a
        forces += f_b + f_a
        virial += w_b + w_a

        return ForceFieldResult(energies=energies, forces=forces, virial=virial)

    # -- term implementations ------------------------------------------------------

    def _candidate_pairs(
        self,
        positions: np.ndarray,
        box: PeriodicBox,
        rc: float,
        table: Tuple[np.ndarray, np.ndarray],
        exclude_same_molecule: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pair indices to examine: the precomputed table or linked cells."""
        if self.neighbor_method == "all_pairs":
            return table
        from repro.md.neighbors import cell_list_pairs

        ii, jj = cell_list_pairs(positions, box, rc)
        if exclude_same_molecule and ii.size:
            mask = (ii // 3) != (jj // 3)
            ii, jj = ii[mask], jj[mask]
        return ii, jj

    def _lennard_jones(
        self, pos_o: np.ndarray, box: PeriodicBox, rc: float
    ) -> Tuple[float, np.ndarray, float]:
        eps, sig = self.params.epsilon, self.params.sigma
        f = np.zeros_like(pos_o)
        pi, pj = self._candidate_pairs(
            pos_o, box, rc, (self._oo_i, self._oo_j), exclude_same_molecule=False
        )
        if eps == 0.0 or pi.size == 0:
            return 0.0, f, 0.0
        d = box.minimum_image(pos_o[pi] - pos_o[pj])
        r2 = np.einsum("ij,ij->i", d, d)
        mask = r2 < rc * rc
        if not np.any(mask):
            return 0.0, f, 0.0
        d = d[mask]
        r2 = r2[mask]
        ii = pi[mask]
        jj = pj[mask]
        s2 = (sig * sig) / r2
        s6 = s2 * s2 * s2
        s12 = s6 * s6
        e_pair = 4.0 * eps * (s12 - s6)
        if self.shift:
            s6c = (sig / rc) ** 6
            e_pair = e_pair - 4.0 * eps * (s6c * s6c - s6c)
        # F_i = 24 eps (2 s12 - s6) / r^2 * d   (force on i along +d)
        fmag = 24.0 * eps * (2.0 * s12 - s6) / r2
        fvec = fmag[:, None] * d
        np.add.at(f, ii, fvec)
        np.add.at(f, jj, -fvec)
        virial = float(np.einsum("ij,ij->", d, fvec))
        return float(e_pair.sum()), f, virial

    def _coulomb(
        self, csites: np.ndarray, box: PeriodicBox, rc: float
    ) -> Tuple[float, np.ndarray, float]:
        f = np.zeros_like(csites)
        pi, pj = self._candidate_pairs(
            csites, box, rc, (self._cs_i, self._cs_j), exclude_same_molecule=True
        )
        if self.params.q_h == 0.0 or pi.size == 0:
            return 0.0, f, 0.0
        d = box.minimum_image(csites[pi] - csites[pj])
        r2 = np.einsum("ij,ij->i", d, d)
        mask = r2 < rc * rc
        if not np.any(mask):
            return 0.0, f, 0.0
        d = d[mask]
        r2 = r2[mask]
        pair_qq = (
            self._qq
            if self.neighbor_method == "all_pairs"
            else COULOMB_CONST * self._charges[pi] * self._charges[pj]
        )
        qq = pair_qq[mask]
        ii = pi[mask]
        jj = pj[mask]
        r = np.sqrt(r2)
        e_pair = qq / r
        if self.shift:
            e_pair = e_pair - qq / rc
        fmag = qq / (r2 * r)
        fvec = fmag[:, None] * d
        np.add.at(f, ii, fvec)
        np.add.at(f, jj, -fvec)
        virial = float(np.einsum("ij,ij->", d, fvec))
        return float(e_pair.sum()), f, virial

    def _bonds(self, pos: np.ndarray) -> Tuple[float, np.ndarray, float]:
        kb, r0 = self.params.k_bond, self.params.r_oh
        O = pos[0::3]
        f = np.zeros_like(pos)
        energy = 0.0
        virial = 0.0
        for h_off in (1, 2):
            H = pos[h_off::3]
            u = H - O
            r = np.linalg.norm(u, axis=1)
            dr = r - r0
            energy += float(kb * np.dot(dr, dr))
            # F_H = -2 kb (r - r0) u/r
            fh = (-2.0 * kb * dr / r)[:, None] * u
            f[h_off::3] += fh
            f[0::3] -= fh
            virial += float(np.einsum("ij,ij->", u, fh))
        return energy, f, virial

    def _angles(self, pos: np.ndarray) -> Tuple[float, np.ndarray, float]:
        ka, th0 = self.params.k_angle, self.params.theta
        O = pos[0::3]
        H1 = pos[1::3]
        H2 = pos[2::3]
        u = H1 - O
        v = H2 - O
        ru = np.linalg.norm(u, axis=1)
        rv = np.linalg.norm(v, axis=1)
        cos_t = np.clip(np.einsum("ij,ij->i", u, v) / (ru * rv), -1.0, 1.0)
        theta = np.arccos(cos_t)
        sin_t = np.sqrt(np.maximum(1.0 - cos_t * cos_t, 1e-12))
        dtheta = theta - th0
        energy = float(ka * np.dot(dtheta, dtheta))
        # dE/dtheta = 2 ka (theta - th0);  dtheta/du = -(1/sin) dcos/du
        coeff = 2.0 * ka * dtheta / sin_t  # = -dE/dcos
        dcos_du = v / (ru * rv)[:, None] - (cos_t / (ru * ru))[:, None] * u
        dcos_dv = u / (ru * rv)[:, None] - (cos_t / (rv * rv))[:, None] * v
        f_h1 = coeff[:, None] * dcos_du
        f_h2 = coeff[:, None] * dcos_dv
        f = np.zeros_like(pos)
        f[1::3] += f_h1
        f[2::3] += f_h2
        f[0::3] -= f_h1 + f_h2
        virial = float(np.einsum("ij,ij->", u, f_h1) + np.einsum("ij,ij->", v, f_h2))
        return energy, f, virial
